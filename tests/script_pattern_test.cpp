// Lua pattern matching: the matcher itself plus string.find/match/gmatch/
// gsub semantics.
#include "script/lua_pattern.h"

#include <gtest/gtest.h>

#include "script/engine.h"

namespace adapt::script {
namespace {

// ---- the raw matcher ------------------------------------------------------

TEST(PatternCoreTest, LiteralAndDot) {
  auto m = pattern_find("hello world", "wor");
  ASSERT_TRUE(m);
  EXPECT_EQ(m->start, 6u);
  EXPECT_EQ(m->end, 9u);
  EXPECT_TRUE(pattern_find("abc", "a.c"));
  EXPECT_FALSE(pattern_find("abc", "a.d"));
}

TEST(PatternCoreTest, CharacterClasses) {
  EXPECT_TRUE(pattern_find("abc123", "%d"));
  EXPECT_EQ(pattern_find("abc123", "%d+")->start, 3u);
  EXPECT_TRUE(pattern_find("  x", "%s%s%a"));
  EXPECT_TRUE(pattern_find("HI", "%u%u"));
  EXPECT_FALSE(pattern_find("hi", "%u"));
  EXPECT_TRUE(pattern_find("hi!", "%p"));
  EXPECT_TRUE(pattern_find("beef", "%x+"));
  EXPECT_FALSE(pattern_find("g", "%x")) << "g is not a hex digit";
}

TEST(PatternCoreTest, ComplementClasses) {
  EXPECT_EQ(pattern_find("123a", "%D")->start, 3u);
  EXPECT_EQ(pattern_find("a 1", "%S+")->end, 1u);
}

TEST(PatternCoreTest, Sets) {
  EXPECT_TRUE(pattern_find("cat", "[cb]at"));
  EXPECT_TRUE(pattern_find("bat", "[cb]at"));
  EXPECT_FALSE(pattern_find("rat", "[cb]at"));
  EXPECT_TRUE(pattern_find("f", "[a-f]"));
  EXPECT_FALSE(pattern_find("g", "[a-f]"));
  EXPECT_TRUE(pattern_find("g", "[^a-f]"));
  EXPECT_TRUE(pattern_find("5", "[%d]"));
  EXPECT_TRUE(pattern_find("-", "[%-x]")) << "escaped dash in set";
}

TEST(PatternCoreTest, Quantifiers) {
  EXPECT_EQ(pattern_find("aaa", "a*")->end, 3u) << "* is greedy";
  EXPECT_EQ(pattern_find("aaa", "a-")->end, 0u) << "- is lazy";
  EXPECT_EQ(pattern_find("aaab", "a-b")->end, 4u);
  EXPECT_TRUE(pattern_find("color", "colou?r"));
  EXPECT_TRUE(pattern_find("colour", "colou?r"));
  EXPECT_FALSE(pattern_find("colouur", "colou?r"));
  EXPECT_FALSE(pattern_find("", "a+"));
  EXPECT_TRUE(pattern_find("", "a*"));
}

TEST(PatternCoreTest, Anchors) {
  EXPECT_TRUE(pattern_find("hello", "^hel"));
  EXPECT_FALSE(pattern_find("say hello", "^hel"));
  EXPECT_TRUE(pattern_find("hello", "llo$"));
  EXPECT_FALSE(pattern_find("hello!", "llo$"));
  EXPECT_TRUE(pattern_find("x", "^x$"));
}

TEST(PatternCoreTest, Captures) {
  const auto m = pattern_find("key=value", "(%w+)=(%w+)");
  ASSERT_TRUE(m);
  ASSERT_EQ(m->captures.size(), 2u);
  EXPECT_EQ(m->captures[0].text, "key");
  EXPECT_EQ(m->captures[1].text, "value");
}

TEST(PatternCoreTest, NestedCaptures) {
  const auto m = pattern_find("abc", "((a)(b))c");
  ASSERT_TRUE(m);
  ASSERT_EQ(m->captures.size(), 3u);
  EXPECT_EQ(m->captures[0].text, "ab");
  EXPECT_EQ(m->captures[1].text, "a");
  EXPECT_EQ(m->captures[2].text, "b");
}

TEST(PatternCoreTest, PositionCaptures) {
  const auto m = pattern_find("hello", "l()l");
  ASSERT_TRUE(m);
  ASSERT_EQ(m->captures.size(), 1u);
  EXPECT_TRUE(m->captures[0].is_position);
  EXPECT_EQ(m->captures[0].position, 4u);
}

TEST(PatternCoreTest, BackReferences) {
  EXPECT_TRUE(pattern_find("abcabc", "(abc)%1"));
  EXPECT_FALSE(pattern_find("abcabd", "(abc)%1"));
  EXPECT_TRUE(pattern_find("xx", "(.)%1"));
}

TEST(PatternCoreTest, EscapedMagicChars) {
  EXPECT_TRUE(pattern_find("3.14", "%d%.%d"));
  EXPECT_FALSE(pattern_find("3x14", "%d%.%d"));
  EXPECT_TRUE(pattern_find("(a)", "%((%a)%)"));
  EXPECT_TRUE(pattern_find("100%", "%d+%%"));
}

TEST(PatternCoreTest, InitOffset) {
  EXPECT_EQ(pattern_find("aXbXc", "X", 2)->start, 3u);
  EXPECT_FALSE(pattern_find("abc", "a", 1));
  EXPECT_FALSE(pattern_find("abc", "x", 99));
}

TEST(PatternCoreTest, MalformedPatterns) {
  EXPECT_THROW(pattern_find("x", "("), PatternError);
  EXPECT_THROW(pattern_find("x", ")"), PatternError);
  EXPECT_THROW(pattern_find("x", "%"), PatternError);
  EXPECT_THROW(pattern_find("x", "[abc"), PatternError);
  EXPECT_THROW(pattern_find("aa", "(a)%3"), PatternError)
      << "backreference to a nonexistent capture, reached during matching";
}

TEST(PatternCoreTest, GsubTemplate) {
  int count = 0;
  EXPECT_EQ(pattern_gsub("hello world", "o", "0", -1, count), "hell0 w0rld");
  EXPECT_EQ(count, 2);
  EXPECT_EQ(pattern_gsub("hello world", "o", "0", 1, count), "hell0 world");
  EXPECT_EQ(count, 1);
  EXPECT_EQ(pattern_gsub("key=val", "(%w+)=(%w+)", "%2=%1", -1, count), "val=key");
  EXPECT_EQ(pattern_gsub("abc", "%w", "[%0]", -1, count), "[a][b][c]");
  EXPECT_EQ(pattern_gsub("abc", "x*", "-", -1, count), "-a-b-c-")
      << "empty matches advance one char (Lua semantics)";
  EXPECT_THROW(pattern_gsub("x", "x", "%9", -1, count), PatternError);
  EXPECT_THROW(pattern_gsub("x", "x", "%z", -1, count), PatternError);
}

// ---- through the stdlib ---------------------------------------------------

class PatternLibTest : public ::testing::Test {
 protected:
  Value run(const std::string& code) { return eng_.eval1(code); }
  std::string str(const std::string& code) { return run(code).as_string(); }
  ScriptEngine eng_;
};

TEST_F(PatternLibTest, FindWithPatterns) {
  ValueList out = eng_.eval("return string.find('hello 42 world', '%d+')");
  ASSERT_GE(out.size(), 2u);
  EXPECT_DOUBLE_EQ(out[0].as_number(), 7);
  EXPECT_DOUBLE_EQ(out[1].as_number(), 8);
}

TEST_F(PatternLibTest, FindReturnsCaptures) {
  ValueList out = eng_.eval("return string.find('key=value', '(%w+)=(%w+)')");
  ASSERT_EQ(out.size(), 4u);
  EXPECT_EQ(out[2].as_string(), "key");
  EXPECT_EQ(out[3].as_string(), "value");
}

TEST_F(PatternLibTest, FindPlainMode) {
  // In plain mode magic characters are literal.
  EXPECT_TRUE(run("return string.find('a+b', 'a+b', 1, true)").truthy());
  ValueList out = eng_.eval("return string.find('xa+by', 'a+b', 1, true)");
  EXPECT_DOUBLE_EQ(out.at(0).as_number(), 2);
}

TEST_F(PatternLibTest, Match) {
  EXPECT_EQ(str("return string.match('hello 42', '%d+')"), "42");
  EXPECT_EQ(str("return string.match('key=val', '(%w+)=')"), "key");
  EXPECT_TRUE(run("return string.match('abc', '%d')").is_nil());
  ValueList out = eng_.eval("return string.match('2026-07-07', '(%d+)-(%d+)-(%d+)')");
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[0].as_string(), "2026");
  EXPECT_EQ(out[2].as_string(), "07");
}

TEST_F(PatternLibTest, GmatchIteratesAllMatches) {
  const std::string code = R"(
    local words = {}
    for w in string.gmatch('the quick brown fox', '%a+') do
      table.insert(words, w)
    end
    return table.concat(words, ','), #words
  )";
  ValueList out = eng_.eval(code);
  EXPECT_EQ(out.at(0).as_string(), "the,quick,brown,fox");
  EXPECT_DOUBLE_EQ(out.at(1).as_number(), 4);
}

TEST_F(PatternLibTest, GmatchWithCaptures) {
  const std::string code = R"(
    local t = {}
    for k, v in string.gmatch('a=1, b=2, c=3', '(%w+)=(%w+)') do
      t[k] = tonumber(v)
    end
    return t.a + t.b + t.c
  )";
  EXPECT_DOUBLE_EQ(run(code).as_number(), 6);
}

TEST_F(PatternLibTest, GsubWithTemplate) {
  ValueList out = eng_.eval("return string.gsub('hello world', 'o', '0')");
  EXPECT_EQ(out.at(0).as_string(), "hell0 w0rld");
  EXPECT_DOUBLE_EQ(out.at(1).as_number(), 2);
  EXPECT_EQ(str("return (string.gsub('hello', 'l+', 'L'))"), "heLo");
}

TEST_F(PatternLibTest, GsubWithFunction) {
  EXPECT_EQ(str(R"(return (string.gsub('a1b2', '%d', function(d)
    return tostring(tonumber(d) * 10)
  end)))"),
            "a10b20");
  // Returning nil keeps the original text.
  EXPECT_EQ(str(R"(return (string.gsub('keep drop', '%a+', function(w)
    if w == 'drop' then return 'X' end
    return nil
  end)))"),
            "keep X");
}

TEST_F(PatternLibTest, GsubLimit) {
  EXPECT_EQ(str("return (string.gsub('aaaa', 'a', 'b', 2))"), "bbaa");
}

TEST_F(PatternLibTest, PracticalAgentUse) {
  // The kind of string handling agent scripts do: parse a loadavg line.
  const std::string code = R"(
    local line = '0.42 1.50 2.75 1/123 4567'
    local l1, l5, l15 = string.match(line, '^(%S+) (%S+) (%S+)')
    return tonumber(l1), tonumber(l5), tonumber(l15)
  )";
  ValueList out = eng_.eval(code);
  ASSERT_EQ(out.size(), 3u);
  EXPECT_DOUBLE_EQ(out[0].as_number(), 0.42);
  EXPECT_DOUBLE_EQ(out[1].as_number(), 1.50);
  EXPECT_DOUBLE_EQ(out[2].as_number(), 2.75);
}

TEST_F(PatternLibTest, BadPatternRaisesCatchableError) {
  ValueList out = eng_.eval("return pcall(function() return string.match('x', '%') end)");
  EXPECT_FALSE(out.at(0).as_bool());
}

}  // namespace
}  // namespace adapt::script
