// End-to-end behavior of deadline propagation and admission control: nested
// invokes inherit the shrunken budget across hops, expired requests are
// rejected before the servant runs (counter-verified), Overloaded rejections
// are retried for any operation under the retry budget, critical traffic
// bypasses the admission queue, backoff sleeps never overshoot the caller's
// deadline, and the overload state is visible from Luma and as a monitor
// aspect.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "monitor/monitor.h"
#include "monitor/bindings.h"
#include "orb/admission.h"
#include "orb/orb.h"
#include "orb/script_bindings.h"
#include "script/engine.h"

namespace adapt::orb {
namespace {

double elapsed_seconds(const std::chrono::steady_clock::time_point& start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
}

/// Servant reporting the dispatch deadline its handler observes, or -1 when
/// none was installed.
std::shared_ptr<FunctionServant> make_probe_servant() {
  auto servant = FunctionServant::make("Probe");
  servant->on("probe", [](const ValueList&) {
    const auto remaining = current_dispatch_remaining();
    return Value(remaining ? *remaining : -1.0);
  });
  return servant;
}

// ---- deadline inheritance --------------------------------------------------

TEST(OrbDeadlineTest, InprocNestedInvokeInheritsShrunkenBudget) {
  auto orb = Orb::create({.name = "nested-inproc"});
  const ObjectRef probe_ref = orb->register_servant(make_probe_servant(), "probe");

  auto outer = FunctionServant::make("Outer");
  // Raw pointer: a shared_ptr capture would cycle (orb -> servant -> orb).
  outer->on("relay", [orb = orb.get(), probe_ref](const ValueList&) {
    std::this_thread::sleep_for(std::chrono::milliseconds(60));
    return orb->invoke(probe_ref, "probe", {});
  });
  const ObjectRef outer_ref = orb->register_servant(outer, "outer");

  InvokeOptions options;
  options.deadline = 1.0;
  const double seen = orb->invoke(outer_ref, "relay", {}, options).as_number();
  // The inner hop observed a live budget, shrunken by the outer hop's work.
  EXPECT_GT(seen, 0.0);
  EXPECT_LT(seen, 1.0 - 0.05);
}

TEST(OrbDeadlineTest, TwoHopTcpInvokeObservesShrunkenDeadline) {
  // leaf <-tcp- relay <-tcp- client, all opted into the v2 context tail.
  OrbConfig leaf_cfg;
  leaf_cfg.name = "leaf";
  leaf_cfg.listen_tcp = true;
  leaf_cfg.reactor_workers = 2;
  auto leaf = Orb::create(leaf_cfg);
  const ObjectRef probe_ref = leaf->register_servant(make_probe_servant(), "probe");

  OrbConfig relay_cfg;
  relay_cfg.name = "relay";
  relay_cfg.listen_tcp = true;
  relay_cfg.reactor_workers = 2;
  relay_cfg.propagate_wire_context = true;
  auto relay = Orb::create(relay_cfg);
  auto relay_servant = FunctionServant::make("Relay");
  relay_servant->on("relay", [relay = relay.get(), probe_ref](const ValueList&) {
    std::this_thread::sleep_for(std::chrono::milliseconds(80));
    return relay->invoke(probe_ref, "probe", {});
  });
  const ObjectRef relay_ref = relay->register_servant(relay_servant, "relay");

  OrbConfig client_cfg;
  client_cfg.name = "client";
  client_cfg.propagate_wire_context = true;
  auto client = Orb::create(client_cfg);

  InvokeOptions options;
  options.deadline = 2.0;
  const double seen = client->invoke(relay_ref, "relay", {}, options).as_number();
  // The leaf saw a deadline (not -1), strictly below the original budget
  // minus the relay's work, and still positive.
  EXPECT_GT(seen, 0.0);
  EXPECT_LT(seen, 2.0 - 0.07);
  EXPECT_GT(seen, 0.5) << "two local hops should not eat most of a 2s budget";
}

TEST(OrbDeadlineTest, ExhaustedInheritedBudgetFailsFastBeforeSending) {
  auto orb = Orb::create({.name = "exhausted"});
  const ObjectRef probe_ref = orb->register_servant(make_probe_servant(), "probe");

  auto outer = FunctionServant::make("Outer");
  outer->on("overstay", [orb = orb.get(), probe_ref](const ValueList&) {
    // Sleep past the caller's whole budget, then try a nested call: the
    // invoke must fail immediately, before any request goes out.
    std::this_thread::sleep_for(std::chrono::milliseconds(120));
    try {
      orb->invoke(probe_ref, "probe", {});
      return Value("reached-probe");
    } catch (const TimeoutError&) {
      return Value("failed-fast");
    }
  });
  const ObjectRef outer_ref = orb->register_servant(outer, "outer");

  InvokeOptions options;
  options.deadline = 0.05;
  EXPECT_EQ(orb->invoke(outer_ref, "overstay", {}, options).as_string(), "failed-fast");
  EXPECT_GE(orb->stats().timeouts, 1u);
}

// ---- pre-dispatch rejection (counter-verified) -----------------------------

TEST(OrbDeadlineTest, RequestExpiringInQueueIsRejectedBeforeServantRuns) {
  OrbConfig cfg;
  cfg.name = "expire-queue";
  cfg.max_in_flight_dispatches = 1;
  cfg.admission_queue_limit = 8;
  auto orb = Orb::create(cfg);

  std::atomic<int> work_runs{0};
  auto servant = FunctionServant::make("Work");
  servant->on("slow", [](const ValueList&) {
    std::this_thread::sleep_for(std::chrono::milliseconds(300));
    return Value(true);
  });
  servant->on("work", [&work_runs](const ValueList&) {
    ++work_runs;
    return Value(true);
  });
  const ObjectRef ref = orb->register_servant(servant, "w");

  // Saturate the single dispatch slot...
  std::thread holder([&] { orb->invoke(ref, "slow", {}); });
  while (orb->overload().in_flight == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  // ...then send a short-deadline request. It queues behind the slot and
  // its budget expires in the queue: rejected pre-dispatch, servant never
  // runs (inproc always carries the v2 deadline tail).
  InvokeOptions options;
  options.deadline = 0.05;
  EXPECT_THROW(orb->invoke(ref, "work", {}, options), DeadlineExceeded);
  holder.join();

  EXPECT_EQ(work_runs.load(), 0) << "expired request must not reach the servant";
  const OrbStats stats = orb->stats();
  EXPECT_GE(stats.requests_expired, 1u);
  EXPECT_GE(stats.overloads, 1u);  // client-observed side of the same event
  EXPECT_EQ(stats.requests_shed, 0u) << "expiry is not a shed";
}

// ---- Overloaded retries ----------------------------------------------------

/// Server with one dispatch slot and no queue: any request arriving while
/// the slot is busy is shed immediately.
struct ShedServer {
  OrbPtr orb;
  ObjectRef ref;
  std::string name;
  std::atomic<int> mutations{0};

  explicit ShedServer(const std::string& server_name) : name(server_name) {
    OrbConfig cfg;
    cfg.name = name;
    cfg.listen_tcp = true;
    cfg.reactor_workers = 4;
    cfg.max_in_flight_dispatches = 1;
    cfg.admission_queue_limit = 0;
    orb = Orb::create(cfg);
    auto servant = FunctionServant::make("Shed");
    servant->on("hold", [](const ValueList& a) {
      const int ms = a.empty() ? 150 : static_cast<int>(a[0].as_number());
      std::this_thread::sleep_for(std::chrono::milliseconds(ms));
      return Value(true);
    });
    servant->on("mutate", [this](const ValueList&) {
      ++mutations;
      return Value("done");
    });
    ref = orb->register_servant(servant, "shed");
  }

  /// Occupies the single slot from a second client for `ms` milliseconds.
  std::thread occupy(int ms) {
    auto blocker = Orb::create({.name = name + "-blocker"});
    std::thread t([blocker, r = ref, ms] { blocker->invoke(r, "hold", {Value(double(ms))}); });
    while (orb->overload().in_flight == 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    return t;
  }
};

TEST(OrbDeadlineTest, OverloadedRetriesEvenNonIdempotentOperations) {
  ShedServer server("shed-retry");
  std::thread holder = server.occupy(150);

  // "mutate" is not idempotent — a TransportError would never be retried.
  // An Overloaded rejection is guaranteed pre-dispatch, so the client keeps
  // retrying (with backoff, paced by the retry budget) until the slot frees.
  auto client = Orb::create({.name = "shed-retry-client"});
  InvokeOptions options;
  options.retry = RetryPolicy{.max_attempts = 12, .initial_backoff = 0.04,
                              .backoff_multiplier = 1.5, .max_backoff = 0.1, .jitter = 0.0};
  EXPECT_EQ(client->invoke(server.ref, "mutate", {}, options).as_string(), "done");
  holder.join();

  EXPECT_EQ(server.mutations.load(), 1);
  const OrbStats client_stats = client->stats();
  EXPECT_GE(client_stats.overloads, 1u);
  EXPECT_GE(client_stats.retries, 1u);
  EXPECT_EQ(client_stats.transport_errors, 0u) << "sheds are not transport errors";
  EXPECT_GE(server.orb->stats().requests_shed, 1u);
  EXPECT_GT(server.orb->overload().shed_rate, 0.0);
}

TEST(OrbDeadlineTest, ExhaustedRetryBudgetSurfacesOverloadedImmediately) {
  ShedServer server("shed-budget");
  std::thread holder = server.occupy(200);

  // A zero-cap retry budget can never pay for a retry: the first shed
  // surfaces as Overloaded even though the policy allows 12 attempts.
  OrbConfig client_cfg;
  client_cfg.name = "shed-budget-client";
  client_cfg.retry_budget_cap = 0.0;
  auto client = Orb::create(client_cfg);
  InvokeOptions options;
  options.retry = RetryPolicy{.max_attempts = 12, .initial_backoff = 0.01,
                              .backoff_multiplier = 1.0, .max_backoff = 0.01, .jitter = 0.0};
  EXPECT_THROW(client->invoke(server.ref, "mutate", {}, options), Overloaded);
  holder.join();

  const OrbStats stats = client->stats();
  EXPECT_EQ(stats.overloads, 1u);
  EXPECT_EQ(stats.retries, 0u) << "no token, no retry";
  EXPECT_EQ(server.mutations.load(), 0);
}

// ---- criticality -----------------------------------------------------------

TEST(OrbDeadlineTest, CriticalBitBypassesFullAdmissionQueue) {
  ShedServer server("shed-critical");
  std::thread holder = server.occupy(250);

  OrbConfig client_cfg;
  client_cfg.name = "critical-client";
  client_cfg.propagate_wire_context = true;  // the critical bit rides the v2 tail
  auto client = Orb::create(client_cfg);
  InvokeOptions options;
  options.critical = true;
  // The slot is busy and the queue holds zero — yet the critical call is
  // admitted immediately, no retry loop involved.
  const auto start = std::chrono::steady_clock::now();
  EXPECT_EQ(client->invoke(server.ref, "mutate", {}, options).as_string(), "done");
  EXPECT_LT(elapsed_seconds(start), 0.2);
  holder.join();

  EXPECT_EQ(client->stats().overloads, 0u);
  EXPECT_EQ(server.mutations.load(), 1);
}

TEST(OrbDeadlineTest, ServerSideCriticalOperationsCoverV1Clients) {
  ShedServer server("shed-v1-critical");
  std::thread holder = server.occupy(250);

  // A default client emits v1 frames (no critical bit on the wire) — the
  // server's critical_operations set classifies "_ping" as control traffic
  // anyway, so heartbeat-class operations from old clients survive overload.
  auto client = Orb::create({.name = "v1-critical-client"});
  EXPECT_TRUE(client->invoke(server.ref, "_ping", {}).truthy());
  holder.join();
  EXPECT_EQ(client->stats().overloads, 0u);
}

// ---- backoff clamp (satellite regression) ----------------------------------

TEST(OrbDeadlineTest, BackoffSleepsNeverOvershootTheDeadline) {
  // Dead endpoint: every attempt fails instantly with ECONNREFUSED, so the
  // elapsed time is pure backoff. An unclamped schedule would sleep
  // 0.2 + 0.4 = 0.6s; the clamp caps the total at the 0.35s budget.
  auto client = Orb::create({.name = "clamp-client"});
  std::string endpoint;
  {
    TcpListener probe("127.0.0.1", 0,
                      [](const Bytes&) -> std::optional<Bytes> { return std::nullopt; });
    endpoint = probe.endpoint();
  }
  ObjectRef ref{endpoint, "obj", ""};

  InvokeOptions options;
  options.idempotent = true;
  options.deadline = 0.35;
  options.retry = RetryPolicy{.max_attempts = 10, .initial_backoff = 0.2,
                              .backoff_multiplier = 2.0, .max_backoff = 5.0, .jitter = 0.0};
  const auto start = std::chrono::steady_clock::now();
  EXPECT_THROW(client->invoke(ref, "_ping", {}, options), TimeoutError);
  const double total = elapsed_seconds(start);
  EXPECT_LE(total, 0.35 + 0.3) << "backoff sleeps must be clamped to the budget";
  EXPECT_GE(total, 0.3) << "the clamped backoff still uses the budget it has";
  EXPECT_GE(client->stats().timeouts, 1u);
  EXPECT_GE(client->stats().retries, 1u);
}

// ---- observability ---------------------------------------------------------

TEST(OrbDeadlineTest, OverloadStateVisibleFromLumaAndMonitorAspect) {
  ShedServer server("shed-visible");
  std::thread holder = server.occupy(200);

  auto client = Orb::create({.name = "visible-client"});
  EXPECT_THROW(client->invoke(server.ref, "mutate", {}), Overloaded);
  holder.join();

  // orb.overload() from Luma, on the server's own engine.
  auto engine = std::make_shared<script::ScriptEngine>();
  install_orb_bindings(*engine, server.orb);
  EXPECT_GE(engine->eval1("return orb.overload().shed").as_number(), 1.0);
  EXPECT_GT(engine->eval1("return orb.overload().shed_rate").as_number(), 0.0);
  EXPECT_DOUBLE_EQ(engine->eval1("return orb.overload().max_in_flight").as_number(), 1.0);
  EXPECT_DOUBLE_EQ(engine->eval1("return orb.overload().in_flight").as_number(), 0.0);

  // The same state as a BasicMonitor aspect, for event observers and
  // trader dynamic properties.
  auto mon = std::make_shared<monitor::BasicMonitor>("OverloadProbe", engine);
  monitor::install_overload_aspect(mon, server.orb);
  mon->update_now();  // aspects are cached; refresh like a timer tick would
  const Value aspect = mon->getAspectValue("overload");
  ASSERT_TRUE(aspect.is_table());
  EXPECT_GE(aspect.as_table()->get(Value("shed")).as_number(), 1.0);

  // The aspect degrades to nil once the ORB is gone (weak capture).
  server.orb->shutdown();
  server.orb.reset();
  mon->update_now();
  EXPECT_TRUE(mon->getAspectValue("overload").is_nil());
}

}  // namespace
}  // namespace adapt::orb
