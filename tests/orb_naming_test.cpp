// CosNaming-subset tests: local API, remote servant access, and the
// bootstrap path (resolve the trader through the naming service).
#include "orb/naming.h"

#include <gtest/gtest.h>

#include "core/infrastructure.h"

namespace adapt::orb {
namespace {

class NamingTest : public ::testing::Test {
 protected:
  NamingTest() : orb_(Orb::create()), naming_(orb_) {
    auto servant = FunctionServant::make("Thing");
    servant->on("id", [](const ValueList&) { return Value("the thing"); });
    thing_ = orb_->register_servant(servant);
  }

  OrbPtr orb_;
  NamingService naming_;
  ObjectRef thing_;
};

TEST_F(NamingTest, BindAndResolve) {
  naming_.bind("things/one", thing_);
  const ObjectRef out = naming_.resolve("things/one");
  EXPECT_EQ(out, thing_);
  EXPECT_EQ(orb_->invoke(out, "id").as_string(), "the thing");
}

TEST_F(NamingTest, BindDuplicateRejected) {
  naming_.bind("a", thing_);
  EXPECT_THROW(naming_.bind("a", thing_), NameAlreadyBound);
  EXPECT_NO_THROW(naming_.rebind("a", thing_));
}

TEST_F(NamingTest, ResolveUnknownThrows) {
  EXPECT_THROW(naming_.resolve("ghost"), NameNotFound);
  EXPECT_FALSE(naming_.try_resolve("ghost").has_value());
}

TEST_F(NamingTest, UnbindRemoves) {
  naming_.bind("temp", thing_);
  naming_.unbind("temp");
  EXPECT_THROW(naming_.resolve("temp"), NameNotFound);
  EXPECT_THROW(naming_.unbind("temp"), NameNotFound);
}

TEST_F(NamingTest, InvalidNamesRejected) {
  EXPECT_THROW(naming_.bind("", thing_), OrbError);
  EXPECT_THROW(naming_.bind("/leading", thing_), OrbError);
  EXPECT_THROW(naming_.bind("trailing/", thing_), OrbError);
  EXPECT_THROW(naming_.bind("a//b", thing_), OrbError);
  EXPECT_THROW(naming_.bind("ok", ObjectRef{}), OrbError);
}

TEST_F(NamingTest, ListWithPrefix) {
  naming_.bind("services/a", thing_);
  naming_.bind("services/b", thing_);
  naming_.bind("hosts/x", thing_);
  EXPECT_EQ(naming_.list("services/"),
            (std::vector<std::string>{"services/a", "services/b"}));
  EXPECT_EQ(naming_.list().size(), 3u);
  EXPECT_EQ(naming_.size(), 3u);
}

TEST_F(NamingTest, RemoteClientFullSurface) {
  auto client_orb = Orb::create();
  NamingClient client(client_orb, naming_.ref());
  client.bind("remote/thing", thing_);
  EXPECT_EQ(client.resolve("remote/thing"), thing_);
  EXPECT_EQ(client.list("remote/"), (std::vector<std::string>{"remote/thing"}));
  client.rebind("remote/thing", thing_);
  client.unbind("remote/thing");
  EXPECT_THROW(client.resolve("remote/thing"), RemoteError);
}

TEST_F(NamingTest, StringifiedNamingRefBootstrap) {
  // The real bootstrap story: a process is handed ONE string (the naming
  // ref), parses it, and finds everything else from there.
  const std::string handoff = naming_.ref().str();
  naming_.bind("things/one", thing_);
  auto other = Orb::create();
  NamingClient client(other, ObjectRef::parse(handoff));
  EXPECT_EQ(other->invoke(client.resolve("things/one"), "id").as_string(), "the thing");
}

TEST(NamingBootstrapTest, InfrastructureBindsTrader) {
  core::Infrastructure infra({.name = "nm-boot"});
  infra.trader().types().add({.name = "Svc"});
  auto client_orb = infra.make_orb("boot-client");
  NamingClient names(client_orb, infra.naming_ref());

  const ObjectRef lookup = names.resolve("services/trader/lookup");
  // Use the resolved lookup to run a real query.
  const Value reply = client_orb->invoke(lookup, "query", {Value("Svc"), Value("")});
  EXPECT_TRUE(reply.is_table());
  EXPECT_EQ(names.list("services/trader/").size(), 3u);
}

}  // namespace
}  // namespace adapt::orb
