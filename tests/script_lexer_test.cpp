// Unit tests for the Luma lexer.
#include "script/lexer.h"

#include <gtest/gtest.h>

namespace adapt::script {
namespace {

std::vector<Token> lex(std::string_view src) { return Lexer(src).tokenize(); }

TEST(LexerTest, EmptyInput) {
  const auto toks = lex("");
  ASSERT_EQ(toks.size(), 1u);
  EXPECT_EQ(toks[0].kind, Tok::Eof);
}

TEST(LexerTest, Keywords) {
  const auto toks = lex("if then else end while do function local return");
  ASSERT_EQ(toks.size(), 10u);
  EXPECT_EQ(toks[0].kind, Tok::If);
  EXPECT_EQ(toks[1].kind, Tok::Then);
  EXPECT_EQ(toks[2].kind, Tok::Else);
  EXPECT_EQ(toks[3].kind, Tok::End);
  EXPECT_EQ(toks[4].kind, Tok::While);
  EXPECT_EQ(toks[5].kind, Tok::Do);
  EXPECT_EQ(toks[6].kind, Tok::Function);
  EXPECT_EQ(toks[7].kind, Tok::Local);
  EXPECT_EQ(toks[8].kind, Tok::Return);
}

TEST(LexerTest, Identifiers) {
  const auto toks = lex("foo _bar baz_2 If");
  EXPECT_EQ(toks[0].kind, Tok::Name);
  EXPECT_EQ(toks[0].text, "foo");
  EXPECT_EQ(toks[1].text, "_bar");
  EXPECT_EQ(toks[2].text, "baz_2");
  EXPECT_EQ(toks[3].kind, Tok::Name) << "keywords are case-sensitive";
}

TEST(LexerTest, Numbers) {
  const auto toks = lex("42 3.5 1e3 2.5e-2 0x1F .5");
  EXPECT_DOUBLE_EQ(toks[0].number, 42);
  EXPECT_DOUBLE_EQ(toks[1].number, 3.5);
  EXPECT_DOUBLE_EQ(toks[2].number, 1000);
  EXPECT_DOUBLE_EQ(toks[3].number, 0.025);
  EXPECT_DOUBLE_EQ(toks[4].number, 31);
  EXPECT_DOUBLE_EQ(toks[5].number, 0.5);
}

TEST(LexerTest, ShortStrings) {
  const auto toks = lex(R"("hello" 'world' "a\nb" "q\"q")");
  EXPECT_EQ(toks[0].text, "hello");
  EXPECT_EQ(toks[1].text, "world");
  EXPECT_EQ(toks[2].text, "a\nb");
  EXPECT_EQ(toks[3].text, "q\"q");
}

TEST(LexerTest, LongStrings) {
  const auto toks = lex("[[multi\nline]]");
  EXPECT_EQ(toks[0].kind, Tok::String);
  EXPECT_EQ(toks[0].text, "multi\nline");
}

TEST(LexerTest, LongStringSkipsLeadingNewline) {
  const auto toks = lex("[[\nbody]]");
  EXPECT_EQ(toks[0].text, "body");
}

TEST(LexerTest, LongStringKeepsQuotes) {
  // The paper's Fig. 4 ships code in [[ ]] containing quoted strings.
  const auto toks = lex("[[return incr == 'yes']]");
  EXPECT_EQ(toks[0].text, "return incr == 'yes'");
}

TEST(LexerTest, Operators) {
  const auto toks = lex("+ - * / % ^ # == ~= <= >= < > = .. ...");
  const Tok expected[] = {Tok::Plus, Tok::Minus, Tok::Star, Tok::Slash, Tok::Percent,
                          Tok::Caret, Tok::Hash, Tok::Eq, Tok::Ne, Tok::Le, Tok::Ge,
                          Tok::Lt, Tok::Gt, Tok::Assign, Tok::Concat, Tok::Ellipsis};
  for (size_t i = 0; i < std::size(expected); ++i) {
    EXPECT_EQ(toks[i].kind, expected[i]) << "token " << i;
  }
}

TEST(LexerTest, LineComments) {
  const auto toks = lex("a -- comment here\nb");
  ASSERT_EQ(toks.size(), 3u);
  EXPECT_EQ(toks[0].text, "a");
  EXPECT_EQ(toks[1].text, "b");
  EXPECT_EQ(toks[1].line, 2);
}

TEST(LexerTest, BlockComments) {
  const auto toks = lex("a --[[ multi\nline comment ]] b");
  ASSERT_EQ(toks.size(), 3u);
  EXPECT_EQ(toks[0].text, "a");
  EXPECT_EQ(toks[1].text, "b");
}

TEST(LexerTest, LineNumbersTracked) {
  const auto toks = lex("a\nb\n\nc");
  EXPECT_EQ(toks[0].line, 1);
  EXPECT_EQ(toks[1].line, 2);
  EXPECT_EQ(toks[2].line, 4);
}

TEST(LexerTest, UnterminatedStringThrows) {
  EXPECT_THROW(lex("\"oops"), ParseError);
  EXPECT_THROW(lex("[[oops"), ParseError);
}

TEST(LexerTest, UnterminatedBlockCommentThrows) {
  EXPECT_THROW(lex("--[[ never closed"), ParseError);
}

TEST(LexerTest, InvalidEscapeThrows) {
  EXPECT_THROW(lex(R"("\z")"), ParseError);
}

TEST(LexerTest, StrayTildeThrows) {
  EXPECT_THROW(lex("a ~ b"), ParseError);
}

TEST(LexerTest, NewlineInShortStringThrows) {
  EXPECT_THROW(lex("\"line\nbreak\""), ParseError);
}

TEST(LexerTest, DotVsConcatVsEllipsis) {
  const auto toks = lex("a.b a..b");
  EXPECT_EQ(toks[1].kind, Tok::Dot);
  EXPECT_EQ(toks[4].kind, Tok::Concat);
}

}  // namespace
}  // namespace adapt::script
