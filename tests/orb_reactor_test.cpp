// Reactor serving-core tests: accept-path resilience under fd pressure,
// socket-timeout clamping, resource release without per-connection threads,
// the multi-client concurrency matrix (pipelining × oneway × mid-call stop),
// slow-consumer disconnect, and worker-pool liveness growth.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/resource.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "base/logging.h"
#include "obs/metrics.h"
#include "orb/orb.h"

namespace adapt::orb {
namespace {

using namespace std::chrono_literals;

size_t open_fd_count() {
  size_t n = 0;
  for (const auto& entry : std::filesystem::directory_iterator("/proc/self/fd")) {
    (void)entry;
    ++n;
  }
  return n;
}

size_t thread_count() {
  size_t n = 0;
  for (const auto& entry : std::filesystem::directory_iterator("/proc/self/task")) {
    (void)entry;
    ++n;
  }
  return n;
}

double elapsed_seconds(const std::chrono::steady_clock::time_point& start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
}

/// Blocking client socket speaking raw frames (5s recv timeout so a broken
/// server fails the test instead of hanging it).
int dial_raw(uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  EXPECT_EQ(::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr), 1);
  EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr), 0);
  const timeval tv{5, 0};
  (void)setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv);
  return fd;
}

Bytes payload_of(const std::string& s) { return Bytes(s.begin(), s.end()); }

std::optional<Bytes> echo_handler(const Bytes& request) { return request; }

bool wait_until(const std::function<bool()>& cond, std::chrono::milliseconds budget) {
  const auto deadline = std::chrono::steady_clock::now() + budget;
  while (std::chrono::steady_clock::now() < deadline) {
    if (cond()) return true;
    std::this_thread::sleep_for(5ms);
  }
  return cond();
}

// ---- timeout clamping -----------------------------------------------------

TEST(SocketTimeoutTest, ClampsTinyAndHugeBudgets) {
  // A tiny positive budget must not truncate to {0,0}: that *disables*
  // SO_RCVTIMEO/SO_SNDTIMEO and turns an almost-expired deadline into an
  // indefinite block.
  timeval tv = clamp_socket_timeout(1e-7);
  EXPECT_EQ(tv.tv_sec, 0);
  EXPECT_EQ(tv.tv_usec, 1);

  tv = clamp_socket_timeout(0.0);
  EXPECT_EQ(tv.tv_sec, 0);
  EXPECT_EQ(tv.tv_usec, 1);

  tv = clamp_socket_timeout(-3.0);
  EXPECT_EQ(tv.tv_sec, 0);
  EXPECT_EQ(tv.tv_usec, 1);

  tv = clamp_socket_timeout(2.5);
  EXPECT_EQ(tv.tv_sec, 2);
  EXPECT_NEAR(static_cast<double>(tv.tv_usec), 500000.0, 2.0);

  // Huge budgets are capped instead of overflowing time_t.
  tv = clamp_socket_timeout(1e300);
  EXPECT_EQ(tv.tv_sec, static_cast<time_t>(1e8));

  tv = clamp_socket_timeout(std::nan(""));
  EXPECT_EQ(tv.tv_sec, 0);
  EXPECT_EQ(tv.tv_usec, 1);
}

TEST(SocketTimeoutTest, TinyPositiveBudgetTimesOutInsteadOfBlocking) {
  // Regression: deadline - now() ~ 1e-7s used to truncate to a zero timeval,
  // disabling the socket timeout — the call then blocked for as long as the
  // peer took instead of expiring. A frozen pool clock keeps the in-pool
  // deadline checks positive, so only the socket timeout can end the call.
  std::atomic<bool> slow{false};
  TcpListener listener("127.0.0.1", 0, [&](const Bytes& request) -> std::optional<Bytes> {
    if (slow) std::this_thread::sleep_for(2s);
    return request;
  });

  PoolConfig config;
  config.timeout = 5.0;
  config.now = [] { return 0.0; };
  TcpConnectionPool pool(std::move(config), nullptr);
  const Bytes request = payload_of("ping");

  // Warm the pool so the tiny-budget call reuses a connection (no dial).
  EXPECT_NO_THROW(pool.call(listener.endpoint(), request));
  slow = true;
  const auto start = std::chrono::steady_clock::now();
  EXPECT_THROW(pool.call(listener.endpoint(), request, 1e-7), TimeoutError);
  EXPECT_LT(elapsed_seconds(start), 1.0) << "tiny budget blocked instead of expiring";
}

// ---- accept-path resilience -----------------------------------------------

TEST(ReactorTest, AcceptSurvivesFdExhaustion) {
  // Regression: the old accept loop returned — permanently deafening the
  // server — on any non-EINTR accept failure, EMFILE included. The reactor
  // must count the error, back off, and recover once descriptors free up.
  rlimit saved{};
  ASSERT_EQ(getrlimit(RLIMIT_NOFILE, &saved), 0);

  TcpListener listener("127.0.0.1", 0, echo_handler);
  const int warm = dial_raw(listener.port());
  ASSERT_TRUE(wait_until([&] { return listener.live_connections() == 1; }, 2000ms));
  write_frame(warm, payload_of("warm"));
  EXPECT_EQ(read_frame(warm).value(), payload_of("warm"));

  // Client socket first (it needs an fd of its own), then exhaust the rest
  // of the budget so the server-side accept(2) has nothing left.
  const int starved = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(starved, 0);

  // Silence the logger while descriptors are exhausted: the accept-failure
  // warning would be this process's first ostringstream construction, and
  // GCC's UBSan verifies its vptr by opening /proc/self/maps — which needs
  // an fd we no longer have, yielding a false "invalid vptr" report.
  const LogLevel saved_level = log_level();
  set_log_level(LogLevel::Off);

  rlimit tight = saved;
  tight.rlim_cur = open_fd_count() + 1;
  ASSERT_EQ(setrlimit(RLIMIT_NOFILE, &tight), 0);
  std::vector<int> hogs;
  for (;;) {
    const int fd = ::dup(0);
    if (fd < 0) break;
    hogs.push_back(fd);
  }

  const uint64_t errors_before = obs::metrics().counter("orb.accept.error").value();
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(listener.port());
  ASSERT_EQ(::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr), 1);
  // The TCP handshake completes in the kernel backlog; accepting it needs a
  // descriptor the process no longer has.
  ASSERT_EQ(::connect(starved, reinterpret_cast<sockaddr*>(&addr), sizeof addr), 0);

  EXPECT_TRUE(wait_until(
      [&] { return obs::metrics().counter("orb.accept.error").value() > errors_before; },
      3000ms))
      << "accept failure was not observed/counted";

  // Release the pressure: the backoff expires, the listener re-arms, and the
  // queued connection is finally served.
  for (const int fd : hogs) ::close(fd);
  ASSERT_EQ(setrlimit(RLIMIT_NOFILE, &saved), 0);
  set_log_level(saved_level);

  const timeval tv{5, 0};
  (void)setsockopt(starved, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv);
  write_frame(starved, payload_of("after-recovery"));
  EXPECT_EQ(read_frame(starved).value(), payload_of("after-recovery"))
      << "listener did not recover from fd exhaustion";

  ::close(starved);
  ::close(warm);
}

// ---- resource release -----------------------------------------------------

TEST(ReactorTest, ClosedConnectionsReleaseResourcesWithoutNewAccept) {
  // Regression: finished per-connection threads used to be reaped only from
  // the accept loop, so a listener going quiet after a burst held resources
  // until the next accept (or stop). The reactor must release them as the
  // disconnects happen — with no subsequent accept to nudge it.
  TcpListener listener("127.0.0.1", 0, echo_handler);
  {
    // Warm lazily-created fds before taking the baseline.
    const int fd = dial_raw(listener.port());
    write_frame(fd, payload_of("x"));
    EXPECT_TRUE(read_frame(fd).has_value());
    ::close(fd);
  }
  ASSERT_TRUE(wait_until([&] { return listener.live_connections() == 0; }, 2000ms));
  const size_t fds_before = open_fd_count();

  constexpr int kConns = 12;
  std::vector<int> fds;
  for (int i = 0; i < kConns; ++i) {
    const int fd = dial_raw(listener.port());
    write_frame(fd, payload_of("c" + std::to_string(i)));
    EXPECT_TRUE(read_frame(fd).has_value());
    fds.push_back(fd);
  }
  EXPECT_TRUE(wait_until(
      [&] { return listener.live_connections() == static_cast<size_t>(kConns); },
      2000ms));
  for (const int fd : fds) ::close(fd);

  // No further accept happens; the reactor must still notice every EOF.
  EXPECT_TRUE(wait_until([&] { return listener.live_connections() == 0; }, 3000ms))
      << "live connections not released without a subsequent accept";
  EXPECT_TRUE(wait_until([&] { return open_fd_count() <= fds_before; }, 3000ms))
      << "fds not released: " << open_fd_count() << " > " << fds_before;
}

TEST(ReactorTest, NoThreadPerConnection) {
  TcpListener listener("127.0.0.1", 0, echo_handler);
  const size_t threads_before = thread_count();

  constexpr int kConns = 24;
  std::vector<int> fds;
  for (int i = 0; i < kConns; ++i) {
    const int fd = dial_raw(listener.port());
    write_frame(fd, payload_of("t"));
    EXPECT_TRUE(read_frame(fd).has_value());
    fds.push_back(fd);
  }
  // All 24 connections are open and have been served; the old model would
  // sit at baseline + 24 serving threads here.
  EXPECT_LE(thread_count(), threads_before + 3)
      << "per-connection threads detected";
  for (const int fd : fds) ::close(fd);
}

// ---- concurrency matrix ---------------------------------------------------

TEST(ReactorTest, MultiClientPipelinedCallsLoseNoReplies) {
  TcpListener listener("127.0.0.1", 0, echo_handler);
  constexpr int kClients = 8;
  constexpr int kBatches = 25;
  constexpr int kPipeline = 4;
  std::atomic<int> mismatches{0};

  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      const int fd = dial_raw(listener.port());
      for (int b = 0; b < kBatches; ++b) {
        // Pipelined: write the whole batch, then collect the replies; they
        // must come back complete, in order, one per request.
        for (int i = 0; i < kPipeline; ++i) {
          write_frame(fd, payload_of("c" + std::to_string(c) + ".b" + std::to_string(b) +
                                     "." + std::to_string(i)));
        }
        for (int i = 0; i < kPipeline; ++i) {
          const auto reply = read_frame(fd);
          const Bytes expect = payload_of("c" + std::to_string(c) + ".b" +
                                          std::to_string(b) + "." + std::to_string(i));
          if (!reply || *reply != expect) ++mismatches;
        }
      }
      ::close(fd);
    });
  }
  for (auto& t : clients) t.join();
  EXPECT_EQ(mismatches.load(), 0);
  EXPECT_TRUE(wait_until([&] { return listener.live_connections() == 0; }, 3000ms));
}

TEST(ReactorTest, OnewayFramesInterleavedWithCalls) {
  // Frames starting with 'O' are oneway (no reply); the replies to the
  // interleaved two-way frames must still arrive complete and in order.
  std::atomic<int> oneways{0};
  TcpListener listener("127.0.0.1", 0, [&](const Bytes& request) -> std::optional<Bytes> {
    if (!request.empty() && request[0] == 'O') {
      ++oneways;
      return std::nullopt;
    }
    return request;
  });

  const int fd = dial_raw(listener.port());
  constexpr int kRounds = 60;
  std::vector<Bytes> expected;
  for (int i = 0; i < kRounds; ++i) {
    if (i % 3 == 0) {
      write_frame(fd, payload_of("O." + std::to_string(i)));
    } else {
      const Bytes p = payload_of("R." + std::to_string(i));
      write_frame(fd, p);
      expected.push_back(p);
    }
  }
  for (const Bytes& expect : expected) {
    const auto reply = read_frame(fd);
    ASSERT_TRUE(reply.has_value());
    EXPECT_EQ(*reply, expect);
  }
  EXPECT_TRUE(wait_until([&] { return oneways.load() == kRounds / 3; }, 2000ms));
  ::close(fd);
}

TEST(ReactorTest, StopMidCallFlushesInFlightReply) {
  // stop() joins the workers, so a handler already running finishes and its
  // reply reaches the client — a graceful stop loses no in-flight reply.
  std::atomic<bool> in_handler{false};
  TcpListener listener("127.0.0.1", 0, [&](const Bytes& request) -> std::optional<Bytes> {
    in_handler = true;
    std::this_thread::sleep_for(200ms);
    return request;
  });

  const int fd = dial_raw(listener.port());
  write_frame(fd, payload_of("mid-call"));
  ASSERT_TRUE(wait_until([&] { return in_handler.load(); }, 2000ms));

  const auto start = std::chrono::steady_clock::now();
  listener.stop();
  EXPECT_LT(elapsed_seconds(start), 5.0);
  EXPECT_EQ(read_frame(fd).value(), payload_of("mid-call"));
  // After the flushed reply the connection is closed for good.
  EXPECT_FALSE(read_frame(fd).has_value());
  listener.stop();  // idempotent
  ::close(fd);
}

TEST(ReactorTest, StopUnderConcurrentTrafficShutsDownCleanly) {
  TcpListener listener("127.0.0.1", 0, echo_handler);
  constexpr int kClients = 8;
  std::atomic<int> finished{0};

  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&] {
      try {
        const int fd = dial_raw(listener.port());
        for (;;) {
          write_frame(fd, payload_of("spin"));
          const auto reply = read_frame(fd);
          if (!reply) break;  // server stopped: orderly EOF
        }
        ::close(fd);
      } catch (const Error&) {
        // RST / send-on-closed are equally acceptable shutdown outcomes.
      }
      ++finished;
    });
  }
  std::this_thread::sleep_for(50ms);
  listener.stop();
  for (auto& t : clients) t.join();
  EXPECT_EQ(finished.load(), kClients);
  EXPECT_EQ(listener.live_connections(), 0u);
}

// ---- slow-consumer policy -------------------------------------------------

TEST(ReactorTest, SlowConsumerExceedingWriteQueueCapIsDisconnected) {
  ReactorConfig config;
  config.write_queue_cap = 64u * 1024;
  TcpListener listener(
      "127.0.0.1", 0,
      [](const Bytes&) -> std::optional<Bytes> { return Bytes(1u << 20, 0xAB); },
      config);

  const uint64_t overruns_before = obs::metrics().counter("orb.conn.overrun").value();
  const int fd = dial_raw(listener.port());
  // Request a flood of 1 MiB replies and never read them: once the socket
  // buffers fill, pending output blows past the cap and the reactor must
  // drop the connection instead of buffering without bound.
  for (int i = 0; i < 64; ++i) write_frame(fd, payload_of("more"));

  EXPECT_TRUE(wait_until(
      [&] { return obs::metrics().counter("orb.conn.overrun").value() > overruns_before; },
      5000ms))
      << "write-queue overrun not detected";
  EXPECT_TRUE(wait_until([&] { return listener.live_connections() == 0; }, 5000ms))
      << "slow consumer not disconnected";
  ::close(fd);
}

// ---- worker-pool liveness -------------------------------------------------

TEST(ReactorTest, PoolGrowsWhenEveryWorkerBlocksInHandlers) {
  ReactorConfig config;
  config.workers = 1;
  config.max_workers = 8;
  TcpListener listener(
      "127.0.0.1", 0,
      [](const Bytes& request) -> std::optional<Bytes> {
        std::this_thread::sleep_for(500ms);
        return request;
      },
      config);
  ASSERT_EQ(listener.worker_count(), 1u);

  // Two concurrent slow calls against a single worker: without supervisor
  // growth the second serializes behind the first (>= 1s); with it, both
  // run in parallel once the stall is detected.
  const auto start = std::chrono::steady_clock::now();
  std::vector<std::thread> clients;
  std::atomic<int> replies{0};
  for (int c = 0; c < 2; ++c) {
    clients.emplace_back([&] {
      const int fd = dial_raw(listener.port());
      write_frame(fd, payload_of("slow"));
      if (read_frame(fd).has_value()) ++replies;
      ::close(fd);
    });
  }
  for (auto& t : clients) t.join();
  EXPECT_EQ(replies.load(), 2);
  EXPECT_LT(elapsed_seconds(start), 0.95) << "second call serialized behind a "
                                             "blocked worker: pool did not grow";
  EXPECT_GE(listener.worker_count(), 2u);
}

// ---- ORB-level sanity over the reactor ------------------------------------

TEST(ReactorTest, OrbInvokeMatrixOverReactor) {
  OrbConfig server_cfg;
  server_cfg.name = "reactor-matrix-server";
  server_cfg.listen_tcp = true;
  server_cfg.reactor_workers = 2;
  auto server = Orb::create(server_cfg);
  auto servant = FunctionServant::make("Echo");
  auto oneway_hits = std::make_shared<std::atomic<int>>(0);
  servant->on("echo", [](const ValueList& args) { return args.at(0); });
  servant->on("note", [oneway_hits](const ValueList&) {
    ++*oneway_hits;
    return Value();
  });
  const ObjectRef ref = server->register_servant(servant);

  constexpr int kClients = 4;
  constexpr int kCalls = 25;
  std::atomic<int> errors{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kClients; ++t) {
    threads.emplace_back([&, t] {
      auto client = Orb::create({.name = "reactor-matrix-client-" + std::to_string(t)});
      for (int i = 0; i < kCalls; ++i) {
        const std::string token = std::to_string(t) + ":" + std::to_string(i);
        if (client->invoke(ref, "echo", {Value(token)}).as_string() != token) ++errors;
        if (i % 5 == 0) client->invoke_oneway(ref, "note");
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(errors.load(), 0);
  EXPECT_TRUE(wait_until(
      [&] { return oneway_hits->load() == kClients * (kCalls / 5); }, 3000ms));
  EXPECT_EQ(server->stats().requests_served,
            static_cast<uint64_t>(kClients * kCalls + oneway_hits->load()));
}

}  // namespace
}  // namespace adapt::orb
