// Baseline proxies ([20]-style static selection, round-robin, random) and
// the interceptor-based adaptation path (paper SVI future work, X1).
#include <gtest/gtest.h>

#include "core/baseline_proxy.h"
#include "core/infrastructure.h"
#include "core/interceptor.h"

namespace adapt::core {
namespace {

using orb::FunctionServant;

class BaselineTest : public ::testing::Test {
 protected:
  BaselineTest() {
    trading::ServiceTypeDef type;
    type.name = "HelloService";
    infra_.trader().types().add(type);
  }

  ObjectRef deploy(const std::string& host) {
    auto servant = FunctionServant::make("Hello");
    servant->on("whoami", [host](const ValueList&) { return Value(host); });
    return infra_.deploy_server(host, "HelloService", servant);
  }

  Infrastructure infra_{InfrastructureOptions{.name = "bl" + std::to_string(counter_++)}};
  static int counter_;
};

int BaselineTest::counter_ = 0;

TEST_F(BaselineTest, StaticProxySelectsBestOnce) {
  deploy("host-a");
  deploy("host-b");
  infra_.host("host-a")->set_background_jobs(50.0);
  infra_.run_for(600.0);
  StaticSelectionProxy proxy(infra_.make_orb("static-client"), infra_.lookup_ref(),
                             "HelloService", "", "min LoadAvg");
  ASSERT_TRUE(proxy.select());
  EXPECT_EQ(proxy.invoke("whoami").as_string(), "host-b");

  // Load flips: the paper's point — the static proxy never reconsiders.
  infra_.host("host-a")->set_background_jobs(0.0);
  infra_.host("host-b")->set_background_jobs(90.0);
  infra_.run_for(1200.0);
  EXPECT_EQ(proxy.invoke("whoami").as_string(), "host-b")
      << "static selection sticks with its original choice";
}

TEST_F(BaselineTest, StaticProxyNoOffers) {
  StaticSelectionProxy proxy(infra_.make_orb("static-empty"), infra_.lookup_ref(),
                             "HelloService");
  EXPECT_FALSE(proxy.select());
  EXPECT_THROW(proxy.invoke("whoami"), Error);
}

TEST_F(BaselineTest, RoundRobinCyclesProviders) {
  deploy("host-a");
  deploy("host-b");
  deploy("host-c");
  RoundRobinProxy proxy(infra_.make_orb("rr-client"), infra_.lookup_ref(), "HelloService");
  EXPECT_EQ(proxy.provider_count(), 3u);
  std::map<std::string, int> hits;
  for (int i = 0; i < 9; ++i) ++hits[proxy.invoke("whoami").as_string()];
  EXPECT_EQ(hits["host-a"], 3);
  EXPECT_EQ(hits["host-b"], 3);
  EXPECT_EQ(hits["host-c"], 3);
}

TEST_F(BaselineTest, RandomProxyCoversProviders) {
  deploy("host-a");
  deploy("host-b");
  RandomProxy proxy(infra_.make_orb("rnd-client"), infra_.lookup_ref(), "HelloService");
  std::map<std::string, int> hits;
  for (int i = 0; i < 60; ++i) ++hits[proxy.invoke("whoami").as_string()];
  EXPECT_GT(hits["host-a"], 10);
  EXPECT_GT(hits["host-b"], 10);
}

TEST_F(BaselineTest, EmptyProviderListThrows) {
  RoundRobinProxy rr(infra_.make_orb("rr-empty"), infra_.lookup_ref(), "HelloService");
  EXPECT_THROW(rr.invoke("whoami"), Error);
  RandomProxy rnd(infra_.make_orb("rnd-empty"), infra_.lookup_ref(), "HelloService");
  EXPECT_THROW(rnd.invoke("whoami"), Error);
}

// ---- interceptors (X1) ------------------------------------------------------

TEST_F(BaselineTest, RebindInterceptorRoutesToBestOffer) {
  deploy("host-a");
  deploy("host-b");
  infra_.host("host-a")->set_background_jobs(50.0);
  infra_.run_for(600.0);

  auto client_orb = infra_.make_orb("icp-client");
  InterceptedCaller caller(client_orb);
  auto rebind = std::make_shared<RebindInterceptor>(client_orb, infra_.lookup_ref(),
                                                    "HelloService", "", "min LoadAvg");
  caller.add(rebind);
  // The application calls a fixed (even empty) reference — the interceptor
  // supplies the real target, as with CORBA portable interceptors.
  EXPECT_EQ(caller.invoke(ObjectRef{"inproc://ignored", "x", ""}, "whoami").as_string(),
            "host-b");

  // Loads flip; application code signals reselection.
  infra_.host("host-a")->set_background_jobs(0.0);
  infra_.host("host-b")->set_background_jobs(90.0);
  infra_.run_for(1200.0);
  rebind->reselect();
  EXPECT_EQ(caller.invoke(ObjectRef{"inproc://ignored", "x", ""}, "whoami").as_string(),
            "host-a");
  EXPECT_GE(rebind->rebinds(), 2u);
}

TEST_F(BaselineTest, RebindInterceptorFailsOverOnError) {
  const ObjectRef a = deploy("host-a");
  deploy("host-b");
  auto client_orb = infra_.make_orb("icp-fo-client");
  InterceptedCaller caller(client_orb);
  auto rebind = std::make_shared<RebindInterceptor>(client_orb, infra_.lookup_ref(),
                                                    "HelloService", "", "min LoadAvg");
  caller.add(rebind);
  const std::string first = caller.invoke(ObjectRef{}, "whoami").as_string();
  // Kill whichever server is bound; the next call must land on the other.
  infra_.host_orb(first)->unregister_servant(
      first == "host-a" ? a.object_id : rebind->current().object_id);
  const std::string second = caller.invoke(ObjectRef{}, "whoami").as_string();
  EXPECT_NE(second, first);
}

TEST_F(BaselineTest, TracingInterceptorObservesCalls) {
  deploy("host-a");
  auto client_orb = infra_.make_orb("icp-trace-client");
  InterceptedCaller caller(client_orb);
  auto rebind = std::make_shared<RebindInterceptor>(client_orb, infra_.lookup_ref(),
                                                    "HelloService");
  auto trace = std::make_shared<TracingInterceptor>();
  caller.add(rebind);
  caller.add(trace);
  caller.invoke(ObjectRef{}, "whoami");
  caller.invoke(ObjectRef{}, "whoami");
  EXPECT_EQ(trace->calls(), 2u);
  EXPECT_EQ(trace->replies(), 2u);
  EXPECT_EQ(trace->operations(), (std::vector<std::string>{"whoami", "whoami"}));
}

TEST_F(BaselineTest, InterceptorNoComponentThrows) {
  auto client_orb = infra_.make_orb("icp-none-client");
  InterceptedCaller caller(client_orb);
  caller.add(std::make_shared<RebindInterceptor>(client_orb, infra_.lookup_ref(),
                                                 "HelloService"));
  EXPECT_THROW(caller.invoke(ObjectRef{}, "whoami"), Error);
}

}  // namespace
}  // namespace adapt::core
