// Unit tests for Clock / SimClock / TimerService.
#include "base/timer_service.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

namespace adapt {
namespace {

TEST(SimClockTest, StartsAtZeroAndAdvances) {
  SimClock clock;
  EXPECT_DOUBLE_EQ(clock.now(), 0.0);
  clock.advance(2.5);
  EXPECT_DOUBLE_EQ(clock.now(), 2.5);
}

TEST(SimClockTest, NeverGoesBackward) {
  SimClock clock;
  clock.set(10.0);
  clock.set(5.0);
  EXPECT_DOUBLE_EQ(clock.now(), 10.0);
}

TEST(SimClockTest, SleepWakesWhenAdvanced) {
  auto clock = std::make_shared<SimClock>();
  std::atomic<bool> woke{false};
  std::thread sleeper([&] {
    clock->sleep_for(1.0);
    woke = true;
  });
  // Give the sleeper a moment to block, then advance virtual time.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(woke);
  clock->advance(1.5);
  sleeper.join();
  EXPECT_TRUE(woke);
}

TEST(RealClockTest, MonotonicAndSleeps) {
  RealClock clock;
  const double t0 = clock.now();
  clock.sleep_for(0.01);
  EXPECT_GE(clock.now(), t0 + 0.009);
}

TEST(TimerServiceTest, PeriodicTaskFiresEachPeriod) {
  auto clock = std::make_shared<SimClock>();
  TimerService timers(clock);
  int fired = 0;
  timers.schedule_every(1.0, [&] { ++fired; });
  timers.run_for(5.0);
  EXPECT_EQ(fired, 5);
}

TEST(TimerServiceTest, OneShotFiresOnce) {
  auto clock = std::make_shared<SimClock>();
  TimerService timers(clock);
  int fired = 0;
  timers.schedule_after(2.0, [&] { ++fired; });
  timers.run_for(10.0);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(timers.pending_tasks(), 0u);
}

TEST(TimerServiceTest, TasksFireInTimestampOrder) {
  auto clock = std::make_shared<SimClock>();
  TimerService timers(clock);
  std::vector<int> order;
  timers.schedule_after(3.0, [&] { order.push_back(3); });
  timers.schedule_after(1.0, [&] { order.push_back(1); });
  timers.schedule_after(2.0, [&] { order.push_back(2); });
  timers.run_for(5.0);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(TimerServiceTest, ClockSetToTaskTimeDuringCallback) {
  auto clock = std::make_shared<SimClock>();
  TimerService timers(clock);
  double seen = -1;
  timers.schedule_after(4.0, [&] { seen = clock->now(); });
  timers.run_for(10.0);
  EXPECT_DOUBLE_EQ(seen, 4.0);
  EXPECT_DOUBLE_EQ(clock->now(), 10.0);
}

TEST(TimerServiceTest, CancelPreventsFiring) {
  auto clock = std::make_shared<SimClock>();
  TimerService timers(clock);
  int fired = 0;
  const auto id = timers.schedule_every(1.0, [&] { ++fired; });
  timers.run_for(2.0);
  EXPECT_EQ(fired, 2);
  timers.cancel(id);
  timers.run_for(5.0);
  EXPECT_EQ(fired, 2);
}

TEST(TimerServiceTest, TaskCanCancelItself) {
  auto clock = std::make_shared<SimClock>();
  TimerService timers(clock);
  int fired = 0;
  TimerService::TaskId id = 0;
  id = timers.schedule_every(1.0, [&] {
    if (++fired == 3) timers.cancel(id);
  });
  timers.run_for(10.0);
  EXPECT_EQ(fired, 3);
}

TEST(TimerServiceTest, TaskCanScheduleAnotherWithinWindow) {
  auto clock = std::make_shared<SimClock>();
  TimerService timers(clock);
  std::vector<double> times;
  timers.schedule_after(1.0, [&] {
    times.push_back(clock->now());
    timers.schedule_after(1.0, [&] { times.push_back(clock->now()); });
  });
  timers.run_for(5.0);
  ASSERT_EQ(times.size(), 2u);
  EXPECT_DOUBLE_EQ(times[0], 1.0);
  EXPECT_DOUBLE_EQ(times[1], 2.0);
}

TEST(TimerServiceTest, RunUntilRequiresSimClock) {
  TimerService timers(std::make_shared<RealClock>());
  EXPECT_THROW(timers.run_for(1.0), Error);
}

TEST(TimerServiceTest, RealClockDispatcherFires) {
  TimerService timers(std::make_shared<RealClock>());
  std::atomic<int> fired{0};
  timers.schedule_after(0.01, [&] { ++fired; });
  for (int i = 0; i < 200 && fired == 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_EQ(fired, 1);
}

TEST(TimerServiceTest, RealClockPeriodicFires) {
  TimerService timers(std::make_shared<RealClock>());
  std::atomic<int> fired{0};
  timers.schedule_every(0.005, [&] { ++fired; });
  for (int i = 0; i < 400 && fired < 3; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_GE(fired, 3);
}

TEST(TimerServiceTest, ZeroPeriodClampedNotInfinite) {
  auto clock = std::make_shared<SimClock>();
  TimerService timers(clock);
  int fired = 0;
  const auto id = timers.schedule_every(0.0, [&] { ++fired; });
  timers.run_for(1e-6);
  EXPECT_GT(fired, 0);
  timers.cancel(id);
}

}  // namespace
}  // namespace adapt
