// Unit tests for the metrics registry (src/obs/metrics.*) and its ORB /
// Luma integration: counters, gauges, log-bucketed histogram percentiles,
// snapshot export, and the stats-reset window on Orb.
#include "obs/metrics.h"

#include <gtest/gtest.h>

#include <cmath>
#include <thread>
#include <vector>

#include "obs/script_bindings.h"
#include "orb/orb.h"
#include "orb/script_bindings.h"
#include "script/engine.h"
#include "script/errors.h"

using namespace adapt;
using namespace adapt::obs;

namespace {

TEST(CounterTest, AddValueReset) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);
  c.reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(GaugeTest, SetAddReset) {
  Gauge g;
  g.set(2.5);
  EXPECT_DOUBLE_EQ(g.value(), 2.5);
  g.add(-1.0);
  EXPECT_DOUBLE_EQ(g.value(), 1.5);
  g.reset();
  EXPECT_DOUBLE_EQ(g.value(), 0.0);
}

TEST(HistogramTest, EmptySnapshot) {
  Histogram h;
  const auto s = h.snapshot();
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.sum, 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.p50, 0.0);
}

TEST(HistogramTest, ExactStatsAndBucketedPercentiles) {
  Histogram h;
  for (uint64_t v = 1; v <= 1000; ++v) h.record(v);
  const auto s = h.snapshot();
  EXPECT_EQ(s.count, 1000u);
  EXPECT_EQ(s.sum, 500500u);
  EXPECT_EQ(s.min, 1u);
  EXPECT_EQ(s.max, 1000u);
  EXPECT_DOUBLE_EQ(s.mean(), 500.5);
  // Buckets are power-of-two wide: estimates are within one octave of the
  // exact percentile.
  EXPECT_GE(s.p50, 250.0);
  EXPECT_LE(s.p50, 1000.0);
  EXPECT_GE(s.p95, 475.0);
  EXPECT_LE(s.p99, 2000.0);
  EXPECT_LE(s.p50, s.p95);
  EXPECT_LE(s.p95, s.p99);
}

TEST(HistogramTest, SingleValue) {
  Histogram h;
  h.record(0);  // zero lands in the first bucket, must not underflow
  h.record(1u << 20);
  const auto s = h.snapshot();
  EXPECT_EQ(s.count, 2u);
  EXPECT_EQ(s.min, 0u);
  EXPECT_EQ(s.max, 1u << 20);
}

TEST(HistogramTest, TopBitSamplesStayInRange) {
  // Values with the top bit set (bit width 64) land in the last bucket;
  // before kBuckets grew to 65 this was an out-of-bounds atomic write.
  Histogram h;
  h.record(UINT64_MAX);
  h.record(1ull << 63);
  h.record((1ull << 63) - 1);
  const auto s = h.snapshot();
  EXPECT_EQ(s.count, 3u);
  EXPECT_EQ(s.max, UINT64_MAX);
  EXPECT_GE(s.p99, std::ldexp(1.0, 62));
  EXPECT_LE(s.p99, std::ldexp(1.0, 64));
}

TEST(HistogramTest, SmallSamplePercentilesNeverDipBelowBucketFloor) {
  // Bucket 1 holds exactly the value 1 (range [1, 2)); percentiles must
  // interpolate within [1, 2), not [0, 2).
  Histogram h;
  for (int i = 0; i < 8; ++i) h.record(1);
  const auto s = h.snapshot();
  EXPECT_GE(s.p50, 1.0);
  EXPECT_LT(s.p50, 2.0);
  EXPECT_GE(s.p99, 1.0);
  EXPECT_LE(s.p99, 2.0);  // top rank interpolates to the exclusive bound
}

TEST(HistogramTest, ResetClears) {
  Histogram h;
  h.record(100);
  h.reset();
  const auto s = h.snapshot();
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.max, 0u);
}

TEST(RegistryTest, SameNameSameInstrument) {
  MetricsRegistry reg;
  Counter& a = reg.counter("x");
  Counter& b = reg.counter("x");
  EXPECT_EQ(&a, &b);
  a.add(3);
  EXPECT_EQ(b.value(), 3u);
  // Distinct instrument kinds may share a name without clashing.
  reg.gauge("x").set(1.0);
  EXPECT_EQ(reg.counter("x").value(), 3u);
}

TEST(RegistryTest, NamesAndSnapshotValue) {
  MetricsRegistry reg;
  reg.counter("requests").add(5);
  reg.gauge("load").set(0.75);
  reg.histogram("latency").record(128);

  EXPECT_EQ(reg.counter_names(), std::vector<std::string>{"requests"});
  EXPECT_EQ(reg.gauge_names(), std::vector<std::string>{"load"});
  EXPECT_EQ(reg.histogram_names(), std::vector<std::string>{"latency"});

  const Value v = reg.to_value();
  ASSERT_TRUE(v.is_table());
  const Value counters = v.as_table()->get(Value("counters"));
  ASSERT_TRUE(counters.is_table());
  EXPECT_EQ(counters.as_table()->get(Value("requests")).as_number(), 5.0);
  const Value hists = v.as_table()->get(Value("histograms"));
  ASSERT_TRUE(hists.is_table());
  const Value lat = hists.as_table()->get(Value("latency"));
  ASSERT_TRUE(lat.is_table());
  EXPECT_EQ(lat.as_table()->get(Value("count")).as_number(), 1.0);
}

TEST(RegistryTest, ToJsonContainsInstruments) {
  MetricsRegistry reg;
  reg.counter("hits").add(7);
  reg.histogram("ns").record(42);
  const std::string json = reg.to_json();
  EXPECT_NE(json.find("\"hits\":7"), std::string::npos);
  EXPECT_NE(json.find("\"ns\""), std::string::npos);
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_EQ(json.find('\n'), std::string::npos);
}

TEST(RegistryTest, ToJsonEscapesInstrumentNames) {
  // Names are script-controllable (metrics.counter/... in Luma); quotes and
  // backslashes must not produce malformed JSON.
  MetricsRegistry reg;
  reg.counter("bad\"name\\").add(1);
  reg.gauge("tab\tname").set(2.0);
  reg.histogram("line\nname").record(3);
  const std::string json = reg.to_json();
  EXPECT_NE(json.find("\"bad\\\"name\\\\\":1"), std::string::npos);
  EXPECT_NE(json.find("\"tab\\tname\":2"), std::string::npos);
  EXPECT_NE(json.find("\"line\\nname\""), std::string::npos);
  EXPECT_EQ(json.find('\t'), std::string::npos);
  EXPECT_EQ(json.find('\n'), std::string::npos);
}

TEST(RegistryTest, ResetZeroesButKeepsRegistration) {
  MetricsRegistry reg;
  reg.counter("c").add(9);
  reg.gauge("g").set(1.0);
  reg.histogram("h").record(10);
  reg.reset();
  EXPECT_EQ(reg.counter("c").value(), 0u);
  EXPECT_DOUBLE_EQ(reg.gauge("g").value(), 0.0);
  EXPECT_EQ(reg.histogram("h").snapshot().count, 0u);
  EXPECT_EQ(reg.counter_names().size(), 1u);
}

TEST(RegistryTest, ConcurrentCreateAndUpdate) {
  MetricsRegistry reg;
  constexpr int kThreads = 4;
  constexpr int kIters = 1000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kIters; ++i) {
        reg.counter("shared").add();
        reg.histogram("lat").record(static_cast<uint64_t>(i));
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(reg.counter("shared").value(), static_cast<uint64_t>(kThreads * kIters));
  EXPECT_EQ(reg.histogram("lat").snapshot().count,
            static_cast<uint64_t>(kThreads * kIters));
}

TEST(OrbStatsIntegration, StatsResetGivesCleanWindow) {
  auto server = orb::Orb::create({.name = "metrics-test-server"});
  auto servant = orb::FunctionServant::make("Echo");
  servant->on("echo", [](const ValueList& args) {
    return args.empty() ? Value() : args[0];
  });
  const ObjectRef ref = server->register_servant(servant);
  auto client = orb::Orb::create({.name = "metrics-test-client"});

  client->invoke(ref, "echo", {Value(1.0)});
  client->invoke(ref, "echo", {Value(2.0)});
  EXPECT_GE(client->stats().requests, 2u);
  EXPECT_GE(client->stats().replies, 2u);

  client->stats_reset();
  const orb::OrbStats after = client->stats();
  EXPECT_EQ(after.requests, 0u);
  EXPECT_EQ(after.replies, 0u);

  // The window restarts: the next call counts from zero.
  client->invoke(ref, "echo", {Value(3.0)});
  EXPECT_EQ(client->stats().requests, 1u);

  // The backing registry instruments keep raw totals across the reset.
  EXPECT_GE(metrics().counter("orb.metrics-test-client.requests").value(), 3u);
}

TEST(OrbStatsIntegration, InvokeLatencyHistogramPopulated) {
  auto server = orb::Orb::create({.name = "metrics-lat-server"});
  auto servant = orb::FunctionServant::make("Echo");
  servant->on("echo", [](const ValueList& args) {
    return args.empty() ? Value() : args[0];
  });
  const ObjectRef ref = server->register_servant(servant);
  auto client = orb::Orb::create({.name = "metrics-lat-client"});

  for (int i = 0; i < 5; ++i) client->invoke(ref, "echo", {Value(1.0)});
  const orb::OrbStats stats = client->stats();
  EXPECT_GE(stats.invoke_ns.count, 5u);
  EXPECT_GT(stats.invoke_ns.p50, 0.0);
  EXPECT_GE(server->stats().dispatch_ns.count, 5u);
}

TEST(LumaBindings, MetricsAndStatsReset) {
  script::ScriptEngine engine;
  install_obs_bindings(engine);

  engine.eval("metrics.counter('luma.test.hits', 3)");
  EXPECT_EQ(metrics().counter("luma.test.hits").value(), 3u);
  engine.eval("metrics.gauge('luma.test.load', 0.5)");
  EXPECT_DOUBLE_EQ(metrics().gauge("luma.test.load").value(), 0.5);
  engine.eval("metrics.histogram('luma.test.ns', 250)");
  EXPECT_EQ(metrics().histogram("luma.test.ns").snapshot().count, 1u);

  // Samples the uint64 cast cannot represent are rejected (negative,
  // non-finite) or clamped (finite overflow) instead of hitting UB.
  EXPECT_THROW(engine.eval("metrics.histogram('luma.test.bad', -1)"),
               script::ScriptError);
  EXPECT_EQ(metrics().histogram("luma.test.bad").snapshot().count, 0u);
  engine.eval("metrics.histogram('luma.test.big', 1e20)");  // > 2^64
  EXPECT_EQ(metrics().histogram("luma.test.big").snapshot().max, UINT64_MAX);

  const Value snap = engine.eval1("return metrics.snapshot()");
  ASSERT_TRUE(snap.is_table());
  ASSERT_TRUE(snap.as_table()->get(Value("counters")).is_table());

  // orb.stats_reset() through the ORB bindings.
  auto orb = orb::Orb::create({.name = "metrics-luma-orb"});
  auto servant = orb::FunctionServant::make("Echo");
  servant->on("echo", [](const ValueList& args) {
    return args.empty() ? Value() : args[0];
  });
  const ObjectRef ref = orb->register_servant(servant);
  orb->invoke(ref, "echo", {Value(1.0)});
  EXPECT_GE(orb->stats().requests, 1u);

  script::ScriptEngine env2;
  orb::install_orb_bindings(env2, orb);
  env2.eval("orb.stats_reset()");
  EXPECT_EQ(orb->stats().requests, 0u);
}

}  // namespace
