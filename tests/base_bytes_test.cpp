// Unit tests for the binary encoders used by the ORB wire format.
#include "base/bytes.h"

#include <gtest/gtest.h>

#include <cmath>

namespace adapt {
namespace {

TEST(BytesTest, ScalarRoundtrip) {
  ByteWriter w;
  w.u8(0xAB);
  w.u32(0xDEADBEEF);
  w.u64(0x0123456789ABCDEFull);
  w.f64(3.141592653589793);
  w.str("hello");

  ByteReader r(w.bytes());
  EXPECT_EQ(r.u8(), 0xAB);
  EXPECT_EQ(r.u32(), 0xDEADBEEFu);
  EXPECT_EQ(r.u64(), 0x0123456789ABCDEFull);
  EXPECT_DOUBLE_EQ(r.f64(), 3.141592653589793);
  EXPECT_EQ(r.str(), "hello");
  EXPECT_TRUE(r.done());
}

TEST(BytesTest, EmptyString) {
  ByteWriter w;
  w.str("");
  ByteReader r(w.bytes());
  EXPECT_EQ(r.str(), "");
  EXPECT_TRUE(r.done());
}

TEST(BytesTest, BinaryStringWithNulls) {
  ByteWriter w;
  const std::string payload("a\0b\0c", 5);
  w.str(payload);
  ByteReader r(w.bytes());
  EXPECT_EQ(r.str(), payload);
}

TEST(BytesTest, TruncatedReadThrows) {
  ByteWriter w;
  w.u32(7);
  ByteReader r(w.bytes());
  EXPECT_EQ(r.u32(), 7u);
  EXPECT_THROW((void)r.u8(), SerializationError);
}

TEST(BytesTest, TruncatedStringThrows) {
  ByteWriter w;
  w.u32(100);  // claims 100 bytes follow
  w.u8('x');
  ByteReader r(w.bytes());
  EXPECT_THROW((void)r.str(), SerializationError);
}

TEST(BytesTest, PatchU32) {
  ByteWriter w;
  w.u32(0);  // placeholder
  w.str("body");
  w.patch_u32(0, static_cast<uint32_t>(w.size() - 4));
  ByteReader r(w.bytes());
  EXPECT_EQ(r.u32(), w.size() - 4);
}

TEST(BytesTest, PatchOutOfRangeThrows) {
  ByteWriter w;
  w.u8(1);
  EXPECT_THROW(w.patch_u32(0, 5), SerializationError);
}

TEST(BytesTest, NegativeAndSpecialDoubles) {
  ByteWriter w;
  w.f64(-0.0);
  w.f64(1e308);
  w.f64(-1e-308);
  ByteReader r(w.bytes());
  const double neg_zero = r.f64();
  EXPECT_EQ(neg_zero, 0.0);
  EXPECT_TRUE(std::signbit(neg_zero));
  EXPECT_DOUBLE_EQ(r.f64(), 1e308);
  EXPECT_DOUBLE_EQ(r.f64(), -1e-308);
}

TEST(BytesTest, RemainingCount) {
  ByteWriter w;
  w.u64(1);
  ByteReader r(w.bytes());
  EXPECT_EQ(r.remaining(), 8u);
  (void)r.u32();
  EXPECT_EQ(r.remaining(), 4u);
}

TEST(BytesTest, TakeMovesBuffer) {
  ByteWriter w;
  w.u8(9);
  Bytes b = w.take();
  EXPECT_EQ(b.size(), 1u);
  EXPECT_EQ(b[0], 9);
}

}  // namespace
}  // namespace adapt
