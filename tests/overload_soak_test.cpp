// Overload soak: a TCP-served ORB driven at ~3x its admission capacity for a
// sustained burst must keep its queue bounded (CoDel sheds instead of
// building standing delay), keep serving goodput, never lose critical
// traffic, and come out of the storm with clean bookkeeping (no stuck
// in-flight slots, no queued ghosts). Runs under asan/tsan in check.sh.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "orb/orb.h"

namespace adapt::orb {
namespace {

TEST(OverloadSoakTest, SustainedThreeTimesOverloadStaysBoundedAndCriticalLossFree) {
  // Server capacity: 2 slots x ~5ms of work = ~400 ops/s. Six closed-loop
  // flood threads with zero think time push roughly 3x that.
  OrbConfig cfg;
  cfg.name = "soak-server";
  cfg.listen_tcp = true;
  cfg.reactor_workers = 8;
  cfg.max_in_flight_dispatches = 2;
  cfg.admission_queue_limit = 16;
  cfg.codel_target = 0.005;
  cfg.codel_interval = 0.05;
  cfg.admission_max_queue_wait = 0.25;
  auto server = Orb::create(cfg);

  std::atomic<int> executed{0};
  auto servant = FunctionServant::make("Soak");
  servant->on("work", [&executed](const ValueList&) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    ++executed;
    return Value(true);
  });
  servant->on("beat", [](const ValueList&) { return Value("alive"); });
  const ObjectRef ref = server->register_servant(servant, "soak");

  constexpr int kFloodThreads = 6;
  constexpr auto kDuration = std::chrono::milliseconds(1200);
  std::atomic<bool> stop{false};
  std::atomic<int> ok{0}, shed{0}, other{0};
  std::atomic<size_t> max_queued{0};

  std::vector<std::thread> floods;
  for (int i = 0; i < kFloodThreads; ++i) {
    floods.emplace_back([&, i] {
      auto client = Orb::create({.name = "soak-flood-" + std::to_string(i)});
      while (!stop.load(std::memory_order_relaxed)) {
        try {
          client->invoke(ref, "work", {});
          ++ok;
        } catch (const RejectedError&) {
          ++shed;  // Overloaded or DeadlineExceeded: the shed path worked
        } catch (const Error&) {
          ++other;
        }
      }
    });
  }

  // Critical traffic rides through the same storm, marked via the wire bit.
  std::atomic<int> beats_sent{0}, beats_ok{0};
  std::thread heartbeat([&] {
    OrbConfig hb_cfg;
    hb_cfg.name = "soak-heartbeat";
    hb_cfg.propagate_wire_context = true;
    auto client = Orb::create(hb_cfg);
    InvokeOptions critical;
    critical.critical = true;
    while (!stop.load(std::memory_order_relaxed)) {
      ++beats_sent;
      try {
        if (client->invoke(ref, "beat", {}, critical).as_string() == "alive") ++beats_ok;
      } catch (const Error&) {
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(25));
    }
  });

  // Sample queue occupancy while the storm runs: bounded means the gauge
  // never exceeds the configured queue limit.
  const auto deadline = std::chrono::steady_clock::now() + kDuration;
  while (std::chrono::steady_clock::now() < deadline) {
    const auto o = server->overload();
    size_t seen = max_queued.load();
    while (o.queued > seen && !max_queued.compare_exchange_weak(seen, o.queued)) {
    }
    EXPECT_LE(o.in_flight, 2u + 1u) << "non-critical in-flight must respect the limit";
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  stop = true;
  for (auto& t : floods) t.join();
  heartbeat.join();

  // The storm was real (flood far above capacity) and the valve worked:
  // the server shed, and whatever the clients' paced retries could not
  // absorb surfaced as RejectedError — never as transport/remote errors.
  const OverloadStats after = server->overload();
  const OrbStats stats = server->stats();
  EXPECT_GT(ok.load(), 0) << "goodput must not collapse to zero";
  EXPECT_GT(stats.requests_shed, 0u) << "3x overload must trigger server-side shedding";
  EXPECT_EQ(other.load(), 0) << "overload must not surface as transport/remote errors";
  EXPECT_LE(max_queued.load(), cfg.admission_queue_limit);
  EXPECT_GE(stats.requests_shed + stats.requests_expired, static_cast<uint64_t>(shed.load()));

  // Critical traffic: every heartbeat attempt succeeded.
  EXPECT_GT(beats_sent.load(), 10);
  EXPECT_EQ(beats_ok.load(), beats_sent.load()) << "critical traffic must be loss-free";

  // Clean drain: no stuck slots or queued ghosts after the storm.
  EXPECT_EQ(after.in_flight, 0u);
  EXPECT_EQ(after.queued, 0u);
  EXPECT_EQ(executed.load(), ok.load()) << "every admitted request ran exactly once";

  // And the server still serves normally after the storm.
  auto client = Orb::create({.name = "soak-after"});
  EXPECT_TRUE(client->invoke(ref, "work", {}).truthy());
}

}  // namespace
}  // namespace adapt::orb
