// End-to-end trace propagation across ORB hops, plus wire-format
// compatibility for the v2 context tail: a two-hop call client -> A -> B
// must produce ONE trace whose spans are parented across all three ORBs,
// and v1 (context-free) request frames must keep decoding unchanged.
#include <gtest/gtest.h>

#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "obs/trace.h"
#include "orb/orb.h"
#include "orb/tcp_transport.h"
#include "orb/wire.h"

using namespace adapt;
using obs::Span;
using obs::SpanKind;

namespace {

/// Three-ORB chain (client -> relay -> leaf) recording into one dedicated
/// tracer, so assertions see exactly this test's spans.
struct Chain {
  explicit Chain(bool tcp, const std::string& tag) {
    tracer = std::make_shared<obs::Tracer>(256);

    orb::OrbConfig leaf_cfg;
    leaf_cfg.name = tag + "-leaf";
    leaf_cfg.listen_tcp = tcp;
    leaf_cfg.tracer = tracer;
    leaf = orb::Orb::create(leaf_cfg);
    auto leaf_servant = orb::FunctionServant::make("Leaf");
    leaf_servant->on("leaf_op", [](const ValueList&) { return Value(std::string("leaf")); });
    leaf_ref = leaf->register_servant(leaf_servant);

    orb::OrbConfig relay_cfg;
    relay_cfg.name = tag + "-relay";
    relay_cfg.listen_tcp = tcp;
    relay_cfg.tracer = tracer;
    relay_cfg.propagate_wire_context = tcp;  // TCP context emission is opt-in
    relay = orb::Orb::create(relay_cfg);
    auto relay_servant = orb::FunctionServant::make("Relay");
    relay_servant->on("relay_op", [this](const ValueList&) {
      // Second hop: invoked from inside the relay's dispatch, so the
      // outgoing request must carry the relay's server-span context.
      return relay->invoke(leaf_ref, "leaf_op");
    });
    relay_ref = relay->register_servant(relay_servant);

    orb::OrbConfig client_cfg;
    client_cfg.name = tag + "-client";
    client_cfg.tracer = tracer;
    client_cfg.propagate_wire_context = tcp;
    client = orb::Orb::create(client_cfg);
  }

  [[nodiscard]] const Span* find(const std::string& name, SpanKind kind) const {
    for (const Span& s : spans) {
      if (s.name == name && s.kind == kind) return &s;
    }
    return nullptr;
  }

  void run_and_collect() {
    const Value result = client->invoke(relay_ref, "relay_op");
    EXPECT_EQ(result.str(), "leaf");
    spans = tracer->recent();
  }

  std::shared_ptr<obs::Tracer> tracer;
  orb::OrbPtr leaf, relay, client;
  ObjectRef leaf_ref, relay_ref;
  std::vector<Span> spans;
};

void expect_single_parented_trace(const Chain& chain) {
  ASSERT_EQ(chain.spans.size(), 4u) << "client + 2x(server+client) spans expected";

  const Span* c_relay = chain.find("relay_op", SpanKind::Client);
  const Span* s_relay = chain.find("relay_op", SpanKind::Server);
  const Span* c_leaf = chain.find("leaf_op", SpanKind::Client);
  const Span* s_leaf = chain.find("leaf_op", SpanKind::Server);
  ASSERT_NE(c_relay, nullptr);
  ASSERT_NE(s_relay, nullptr);
  ASSERT_NE(c_leaf, nullptr);
  ASSERT_NE(s_leaf, nullptr);

  // One trace id across all three ORBs.
  const std::string trace_id = c_relay->trace_id_hex();
  EXPECT_EQ(s_relay->trace_id_hex(), trace_id);
  EXPECT_EQ(c_leaf->trace_id_hex(), trace_id);
  EXPECT_EQ(s_leaf->trace_id_hex(), trace_id);

  // Parent chain: client(relay) <- server(relay) <- client(leaf) <- server(leaf).
  EXPECT_EQ(c_relay->parent_id, 0u) << "client span is the trace root";
  EXPECT_EQ(s_relay->parent_id, c_relay->span_id);
  EXPECT_EQ(c_leaf->parent_id, s_relay->span_id);
  EXPECT_EQ(s_leaf->parent_id, c_leaf->span_id);

  // The query API reconstructs the same trace.
  const auto trace = chain.tracer->find_trace(trace_id);
  EXPECT_EQ(trace.size(), 4u);
}

TEST(TracePropagation, TwoHopOverTcp) {
  Chain chain(/*tcp=*/true, "prop-tcp");
  chain.run_and_collect();
  expect_single_parented_trace(chain);
}

TEST(TracePropagation, TwoHopInProcess) {
  Chain chain(/*tcp=*/false, "prop-inproc");
  chain.run_and_collect();
  expect_single_parented_trace(chain);
}

TEST(TracePropagation, AsyncInvokeJoinsCallersTrace) {
  auto tracer = std::make_shared<obs::Tracer>(64);

  orb::OrbConfig server_cfg;
  server_cfg.name = "prop-async-server";
  server_cfg.tracer = tracer;
  auto server = orb::Orb::create(server_cfg);
  auto servant = orb::FunctionServant::make("Echo");
  servant->on("echo", [](const ValueList& args) {
    return args.empty() ? Value() : args[0];
  });
  const ObjectRef ref = server->register_servant(servant);

  orb::OrbConfig client_cfg;
  client_cfg.name = "prop-async-client";
  client_cfg.tracer = tracer;
  auto client = orb::Orb::create(client_cfg);

  std::string trace_id;
  {
    obs::SpanOptions opts;
    opts.tracer = tracer.get();
    obs::ScopedSpan outer("caller", opts);
    trace_id = outer.context().trace_id_hex();
    auto future = client->invoke_async(ref, "echo", {Value(7.0)});
    EXPECT_EQ(future.get().as_number(), 7.0);
  }

  // Every span of the async call — the worker-thread client span and the
  // server span — belongs to the caller's trace.
  const auto trace = tracer->find_trace(trace_id);
  ASSERT_EQ(trace.size(), 3u);  // caller + client(echo) + server(echo)
  const Span* outer_span = nullptr;
  const Span* client_span = nullptr;
  const Span* server_span = nullptr;
  for (const Span& s : trace) {
    if (s.name == "caller") outer_span = &s;
    if (s.name == "echo" && s.kind == SpanKind::Client) client_span = &s;
    if (s.name == "echo" && s.kind == SpanKind::Server) server_span = &s;
  }
  ASSERT_NE(outer_span, nullptr);
  ASSERT_NE(client_span, nullptr);
  ASSERT_NE(server_span, nullptr);
  EXPECT_EQ(client_span->parent_id, outer_span->span_id);
  EXPECT_EQ(server_span->parent_id, client_span->span_id);
}

TEST(TracePropagation, FailedInvokeSpanCarriesError) {
  auto tracer = std::make_shared<obs::Tracer>(64);
  orb::OrbConfig cfg;
  cfg.name = "prop-fail-client";
  cfg.tracer = tracer;
  auto client = orb::Orb::create(cfg);

  ObjectRef bogus;
  bogus.endpoint = "inproc://no-such-orb";
  bogus.object_id = "ghost";
  EXPECT_THROW(client->invoke(bogus, "op"), orb::OrbError);

  const auto spans = tracer->recent();
  ASSERT_FALSE(spans.empty());
  EXPECT_EQ(spans.back().name, "op");
  EXPECT_FALSE(spans.back().ok);
  EXPECT_FALSE(spans.back().status.empty());
}

// ---- wire compatibility ----------------------------------------------------

/// Hand-assembled v1 request frame: exactly the pre-context encoding
/// (type, id, oneway, object, operation, args) with no tail.
Bytes make_v1_frame(uint64_t request_id, const std::string& object_id,
                    const std::string& operation, const ValueList& args) {
  ByteWriter w;
  w.u8(1);  // MsgType::Request
  w.u64(request_id);
  w.u8(0);  // not oneway
  w.str(object_id);
  w.str(operation);
  w.u32(static_cast<uint32_t>(args.size()));
  for (const Value& arg : args) orb::encode_value(w, arg);
  return w.take();
}

TEST(WireCompat, OldFormatRequestStillDecodes) {
  const Bytes v1 = make_v1_frame(42, "obj-1", "echo", {Value(3.5), Value(std::string("hi"))});
  const orb::RequestMessage req = orb::decode_request(v1);
  EXPECT_EQ(req.request_id, 42u);
  EXPECT_EQ(req.object_id, "obj-1");
  EXPECT_EQ(req.operation, "echo");
  ASSERT_EQ(req.args.size(), 2u);
  EXPECT_EQ(req.args[0].as_number(), 3.5);
  EXPECT_EQ(req.args[1].as_string(), "hi");
  EXPECT_FALSE(req.has_context());
  EXPECT_TRUE(req.traceparent.empty());
  EXPECT_EQ(req.find_context("traceparent"), nullptr);
}

TEST(WireCompat, ContextFreeEncodingIsBitIdenticalToV1) {
  orb::RequestMessage req;
  req.request_id = 7;
  req.object_id = "obj-2";
  req.operation = "query";
  req.args = {Value(true)};
  const Bytes encoded = orb::encode_request(req);
  const Bytes v1 = make_v1_frame(7, "obj-2", "query", {Value(true)});
  EXPECT_EQ(encoded, v1) << "a context-free v2 frame must match the v1 encoding "
                            "byte for byte (old decoders reject trailing bytes)";
}

TEST(WireCompat, ContextTailRoundTrips) {
  orb::RequestMessage req;
  req.request_id = 9;
  req.object_id = "obj-3";
  req.operation = "echo";
  req.args = {Value(1.0)};
  req.set_context(orb::RequestMessage::kTraceparentKey,
                  "0123456789abcdeffedcba9876543210-deadbeefcafef00d");
  req.set_context("tenant", "blue");
  EXPECT_TRUE(req.has_context());

  const orb::RequestMessage out = orb::decode_request(orb::encode_request(req));
  EXPECT_EQ(out.request_id, 9u);
  EXPECT_EQ(out.traceparent, "0123456789abcdeffedcba9876543210-deadbeefcafef00d");
  const std::string* tp = out.find_context("traceparent");
  ASSERT_NE(tp, nullptr);
  EXPECT_EQ(*tp, out.traceparent);
  const std::string* tenant = out.find_context("tenant");
  ASSERT_NE(tenant, nullptr);
  EXPECT_EQ(*tenant, "blue");
  EXPECT_EQ(out.find_context("missing"), nullptr);
}

TEST(WireCompat, TracedRequestCarriesHeaderOnTheWire) {
  // A real traced invoke must put a parseable traceparent into the frame.
  auto tracer = std::make_shared<obs::Tracer>(64);
  orb::OrbConfig server_cfg;
  server_cfg.name = "wire-compat-server";
  server_cfg.tracer = tracer;
  auto server = orb::Orb::create(server_cfg);
  auto servant = orb::FunctionServant::make("Sink");
  servant->on("sink", [](const ValueList&) { return Value(); });
  const ObjectRef ref = server->register_servant(servant);

  orb::OrbConfig client_cfg;
  client_cfg.name = "wire-compat-client";
  client_cfg.tracer = tracer;
  auto client = orb::Orb::create(client_cfg);
  client->invoke(ref, "sink");

  const auto spans = tracer->recent();
  const Span* server_span = nullptr;
  const Span* client_span = nullptr;
  for (const Span& s : spans) {
    if (s.name != "sink") continue;
    if (s.kind == SpanKind::Server) server_span = &s;
    if (s.kind == SpanKind::Client) client_span = &s;
  }
  ASSERT_NE(server_span, nullptr);
  ASSERT_NE(client_span, nullptr);
  // The server adopted the wire context rather than rooting a new trace.
  EXPECT_EQ(server_span->trace_id_hex(), client_span->trace_id_hex());
  EXPECT_EQ(server_span->parent_id, client_span->span_id);
}

/// Raw wire-speaking echo listener that keeps the last request payload, so
/// tests can assert on the exact bytes a TCP peer receives.
struct CapturingListener {
  CapturingListener()
      : listener("127.0.0.1", 0, [this](const Bytes& payload) -> std::optional<Bytes> {
          {
            std::scoped_lock lock(mu);
            captured = payload;
          }
          const orb::RequestMessage req = orb::decode_request(payload);
          orb::ReplyMessage rep;
          rep.request_id = req.request_id;
          rep.status = orb::ReplyStatus::Ok;
          rep.result = Value(true);
          return orb::encode_reply(rep);
        }) {}

  [[nodiscard]] Bytes last_payload() {
    std::scoped_lock lock(mu);
    return captured;
  }

  std::mutex mu;
  Bytes captured;
  orb::TcpListener listener;
};

TEST(WireCompat, TcpContextEmissionIsOptIn) {
  // With tracing on but propagate_wire_context left at its default (off),
  // the TCP frame must stay byte-identical to v1 — a pre-context peer
  // would reject any frame carrying the tail.
  auto tracer = std::make_shared<obs::Tracer>(64);
  CapturingListener sink;
  orb::OrbConfig cfg;
  cfg.name = "wire-optin-default-client";
  cfg.tracer = tracer;
  auto client = orb::Orb::create(cfg);
  ObjectRef ref;
  ref.endpoint = sink.listener.endpoint();
  ref.object_id = "obj";
  client->invoke(ref, "echo", {Value(1.0)});

  const Bytes payload = sink.last_payload();
  ASSERT_FALSE(payload.empty());
  const orb::RequestMessage seen = orb::decode_request(payload);
  EXPECT_FALSE(seen.has_context());
  EXPECT_EQ(payload, make_v1_frame(seen.request_id, "obj", "echo", {Value(1.0)}));
}

TEST(WireCompat, DeadlineAndCriticalTailRoundTrips) {
  orb::RequestMessage req;
  req.request_id = 11;
  req.object_id = "obj-4";
  req.operation = "work";
  req.deadline = 1.5;
  req.critical = true;
  EXPECT_TRUE(req.has_context());

  const orb::RequestMessage out = orb::decode_request(orb::encode_request(req));
  EXPECT_DOUBLE_EQ(out.deadline, 1.5);
  EXPECT_TRUE(out.critical);
  EXPECT_TRUE(out.context.empty()) << "dedicated keys must not leak into the "
                                      "generic context list";
  // The dedicated entries coexist with traceparent and generic keys.
  req.set_context(orb::RequestMessage::kTraceparentKey,
                  "0123456789abcdeffedcba9876543210-deadbeefcafef00d");
  req.set_context("tenant", "green");
  const orb::RequestMessage full = orb::decode_request(orb::encode_request(req));
  EXPECT_DOUBLE_EQ(full.deadline, 1.5);
  EXPECT_TRUE(full.critical);
  EXPECT_EQ(full.traceparent, "0123456789abcdeffedcba9876543210-deadbeefcafef00d");
  const std::string* tenant = full.find_context("tenant");
  ASSERT_NE(tenant, nullptr);
  EXPECT_EQ(*tenant, "green");
}

TEST(WireCompat, MalformedDeadlineEntryIsIgnored) {
  // The tail is advisory metadata from a peer; a bad value must not kill
  // the request, just decode as "no deadline".
  orb::RequestMessage req;
  req.set_context(orb::RequestMessage::kDeadlineKey, "not-a-number");
  EXPECT_EQ(req.deadline, 0.0);
  req.set_context(orb::RequestMessage::kDeadlineKey, "-4");
  EXPECT_EQ(req.deadline, 0.0);
  req.set_context(orb::RequestMessage::kCriticalKey, "0");
  EXPECT_FALSE(req.critical);
  req.set_context(orb::RequestMessage::kCriticalKey, "1");
  EXPECT_TRUE(req.critical);
}

TEST(WireCompat, DeadlineOptionsKeepDefaultTcpFramesV1Identical) {
  // A per-call deadline must not leak onto the wire unless the ORB opted
  // into context emission: a pre-deadline (v1) peer rejects any tail.
  CapturingListener sink;
  orb::OrbConfig cfg;
  cfg.name = "wire-deadline-default-client";
  auto client = orb::Orb::create(cfg);
  ObjectRef ref;
  ref.endpoint = sink.listener.endpoint();
  ref.object_id = "obj";
  orb::InvokeOptions options;
  options.deadline = 2.0;
  options.critical = true;
  client->invoke(ref, "echo", {Value(1.0)}, options);

  const Bytes payload = sink.last_payload();
  ASSERT_FALSE(payload.empty());
  const orb::RequestMessage seen = orb::decode_request(payload);
  EXPECT_FALSE(seen.has_context());
  EXPECT_EQ(seen.deadline, 0.0);
  EXPECT_FALSE(seen.critical);
  EXPECT_EQ(payload, make_v1_frame(seen.request_id, "obj", "echo", {Value(1.0)}));
}

TEST(WireCompat, TcpFrameCarriesShrunkenDeadlineWhenOptedIn) {
  CapturingListener sink;
  orb::OrbConfig cfg;
  cfg.name = "wire-deadline-enabled-client";
  cfg.propagate_wire_context = true;
  auto client = orb::Orb::create(cfg);
  ObjectRef ref;
  ref.endpoint = sink.listener.endpoint();
  ref.object_id = "obj";
  orb::InvokeOptions options;
  options.deadline = 2.0;
  options.critical = true;
  client->invoke(ref, "echo", {Value(1.0)}, options);

  const orb::RequestMessage seen = orb::decode_request(sink.last_payload());
  ASSERT_TRUE(seen.has_context());
  // The wire carries the *remaining* budget at send time: positive, and
  // never more than what the caller started with.
  EXPECT_GT(seen.deadline, 0.0);
  EXPECT_LE(seen.deadline, 2.0);
  EXPECT_TRUE(seen.critical);
}

TEST(WireCompat, TcpContextEmissionWhenOptedIn) {
  auto tracer = std::make_shared<obs::Tracer>(64);
  CapturingListener sink;
  orb::OrbConfig cfg;
  cfg.name = "wire-optin-enabled-client";
  cfg.tracer = tracer;
  cfg.propagate_wire_context = true;
  auto client = orb::Orb::create(cfg);
  ObjectRef ref;
  ref.endpoint = sink.listener.endpoint();
  ref.object_id = "obj";
  client->invoke(ref, "echo", {Value(1.0)});

  const orb::RequestMessage seen = orb::decode_request(sink.last_payload());
  ASSERT_TRUE(seen.has_context());
  const auto ctx = obs::TraceContext::from_header(seen.traceparent);
  ASSERT_TRUE(ctx.has_value()) << "traceparent on the wire must parse: "
                               << seen.traceparent;
  // It is the client span's context that rode the wire.
  const auto spans = tracer->recent();
  ASSERT_FALSE(spans.empty());
  EXPECT_EQ(spans.back().trace_id_hex(), ctx->trace_id_hex());
}

}  // namespace
