// Seeded, deterministic mutation fuzz over the full static-analysis front
// end: every mutant — however mangled — must flow through lexer → parser →
// resolver → dataflow without crashing, hanging, or throwing anything
// (syntax errors come back as parse-error diagnostics, not exceptions).
//
// The corpus seeds are real adaptation-code shapes (the paper's Fig. 3
// aspect, strategy scripts, loops, tables, closures); mutations are byte
// flips, insertions, deletions, span duplication, cross-seed splices, and
// token injection. The RNG seed is fixed so a failure reproduces exactly —
// on failure the test prints the mutant index; re-run with the same binary
// to get the same bytes.
#include <gtest/gtest.h>

#include <random>
#include <string>
#include <vector>

#include "script/analysis/analyzer.h"
#include "script/analysis/policy.h"
#include "script/engine.h"

namespace adapt::script::analysis {
namespace {

const std::vector<std::string>& seeds() {
  static const std::vector<std::string> kSeeds = {
      // Fig. 3 aspect.
      "aspect = function(self, currval, monitor)\n"
      "  if currval[1] > currval[2] then\n"
      "    return \"yes\"\n"
      "  else\n"
      "    return \"no\"\n"
      "  end\n"
      "end",
      // io-reading update function.
      "update = function()\n"
      "  readfrom(\"/proc/loadavg\")\n"
      "  local line = read(\"*l\")\n"
      "  readfrom()\n"
      "  return line\n"
      "end",
      // Strategy shape: locals, tables, closures, loops, conditionals.
      "local weights = {}\n"
      "local total = 0\n"
      "for i = 1, 16 do\n"
      "  weights[i] = i * 2\n"
      "  if weights[i] > 8 then\n"
      "    total = total + weights[i]\n"
      "  end\n"
      "end\n"
      "score = function(x) return x + total end\n"
      "return score(1)",
      // Varargs, methods, string ops.
      "f = function(...)\n"
      "  local t = {...}\n"
      "  return string.sub(tostring(t[1]), 1, 3)\n"
      "end\n"
      "return f(\"abcdef\")",
      // Nested control flow with break / repeat.
      "local n = 0\n"
      "while n < 10 do\n"
      "  n = n + 1\n"
      "  repeat\n"
      "    n = n + 1\n"
      "  until n > 5\n"
      "  if n > 8 then break end\n"
      "end\n"
      "return n",
  };
  return kSeeds;
}

const std::vector<std::string>& tokens() {
  static const std::vector<std::string> kTokens = {
      "function", "end",  "if",  "then",   "else", "while", "do",   "repeat",
      "until",    "for",  "in",  "local",  "return", "break", "nil", "true",
      "false",    "and",  "or",  "not",    "...",  "==",    "~=",   "<=",
      "..",       "(",    ")",   "{",      "}",    "[",     "]",    "=",
      ",",        ";",    "\"",  "'",      "\n",   " ",
  };
  return kTokens;
}

std::string mutate(std::string s, std::mt19937& rng) {
  const auto pick = [&](size_t n) {
    return std::uniform_int_distribution<size_t>(0, n - 1)(rng);
  };
  const int rounds = 1 + static_cast<int>(pick(4));
  for (int r = 0; r < rounds; ++r) {
    if (s.empty()) s = "x";
    switch (pick(6)) {
      case 0:  // byte flip
        s[pick(s.size())] = static_cast<char>(pick(256));
        break;
      case 1:  // insert a printable char
        s.insert(pick(s.size() + 1), 1, static_cast<char>(32 + pick(95)));
        break;
      case 2: {  // delete a span
        const size_t at = pick(s.size());
        s.erase(at, 1 + pick(std::min<size_t>(16, s.size() - at)));
        break;
      }
      case 3: {  // duplicate a span
        const size_t at = pick(s.size());
        const size_t len = 1 + pick(std::min<size_t>(24, s.size() - at));
        s.insert(pick(s.size() + 1), s.substr(at, len));
        break;
      }
      case 4: {  // splice from another seed
        const std::string& other = seeds()[pick(seeds().size())];
        const size_t at = pick(other.size());
        const size_t len = 1 + pick(std::min<size_t>(32, other.size() - at));
        s.insert(pick(s.size() + 1), other.substr(at, len));
        break;
      }
      case 5:  // inject a token
        s.insert(pick(s.size() + 1), tokens()[pick(tokens().size())]);
        break;
    }
  }
  return s;
}

NativeRegistry fuzz_catalog() {
  NativeRegistry reg;
  declare_stdlib_signatures(reg);
  reg.declare("lb.set_policy", 1, 2);
  reg.tag("lb", "lb");
  reg.mark_sink("lb.set_policy", "retunes replica balancing policy");
  reg.declare("events.last", 0, 1);
  reg.tag("events", "events");
  reg.mark_taint_source("events.last");
  return reg;
}

TEST(AnalysisFuzzTest, MutatedCorpusNeverCrashesTheFrontEnd) {
  std::mt19937 rng(0xADA97);  // fixed: failures reproduce bit-for-bit
  const NativeRegistry catalog = fuzz_catalog();
  AnalyzeOptions opts;
  opts.policy = &monitor_policy();  // strictest: taint + cost passes both run

  constexpr int kMutants = 3000;
  for (int i = 0; i < kMutants; ++i) {
    const std::string& seed = seeds()[static_cast<size_t>(i) % seeds().size()];
    const std::string mutant = mutate(seed, rng);
    SCOPED_TRACE("mutant " + std::to_string(i));
    AnalysisReport report;
    ASSERT_NO_THROW(report = analyze_source_full(mutant, "=fuzz", catalog, opts));
    for (const Diagnostic& d : report.diags) {
      EXPECT_FALSE(d.code.empty());
      EXPECT_GE(d.line, 0);
    }
  }
}

TEST(AnalysisFuzzTest, UnmutatedSeedsAreCleanUnderShellPolicy) {
  // Sanity check on the corpus itself: the seeds are valid Luma, so a seed
  // suddenly failing to parse means the fuzzer is testing garbage.
  const NativeRegistry catalog = fuzz_catalog();
  AnalyzeOptions opts;
  opts.policy = &shell_policy();
  for (const std::string& seed : seeds()) {
    const auto report = analyze_source_full(seed, "=seed", catalog, opts);
    EXPECT_FALSE(has_errors(report.diags)) << seed;
  }
}

}  // namespace
}  // namespace adapt::script::analysis
