// LuaTrading (paper SIV): the simplified script interface to the trader.
#include "trading/script_bindings.h"

#include <gtest/gtest.h>

namespace adapt::trading {
namespace {

using orb::FunctionServant;
using orb::Orb;

class LuaTradingTest : public ::testing::Test {
 protected:
  LuaTradingTest() : orb_(Orb::create()), trader_(orb_, {.name = "lt"}) {
    trader_.types().add({.name = "Printer",
                         .properties = {{"PPM", "number", PropertyDef::Mode::Normal},
                                        {"Color", "boolean", PropertyDef::Mode::Normal}}});
    install_trading_bindings(engine_, orb_, trader_refs(trader_));
    auto servant = FunctionServant::make("Printer");
    servant->on("print", [](const ValueList&) { return Value("ok"); });
    provider_ = orb_->register_servant(servant);
    engine_.set_global("printer", Value(provider_));
  }

  orb::OrbPtr orb_;
  Trader trader_;
  script::ScriptEngine engine_;
  ObjectRef provider_;
};

TEST_F(LuaTradingTest, ExportAndQueryFromScript) {
  engine_.eval(R"(
    id = trading.export("Printer", printer, {PPM = 30, Color = true})
    offers = trading.query("Printer", "PPM > 20 and Color == TRUE")
  )");
  EXPECT_EQ(trader_.offer_count(), 1u);
  EXPECT_DOUBLE_EQ(engine_.eval1("return #offers").as_number(), 1.0);
  EXPECT_DOUBLE_EQ(engine_.eval1("return offers[1].properties.PPM").as_number(), 30.0);
  EXPECT_EQ(engine_.eval1("return offers[1].type").as_string(), "Printer");
  EXPECT_TRUE(engine_.eval1("return offers[1].provider").is_string())
      << "provider comes back as a parsable ref string";
  const ObjectRef back =
      ObjectRef::parse(engine_.eval1("return offers[1].provider").as_string());
  EXPECT_EQ(back, provider_);
}

TEST_F(LuaTradingTest, SelectReturnsBestOrNil) {
  engine_.eval(R"(
    trading.export("Printer", printer, {PPM = 10})
    trading.export("Printer", printer, {PPM = 50})
    best = trading.select("Printer", "", "max PPM")
    none = trading.select("Printer", "PPM > 99")
  )");
  EXPECT_DOUBLE_EQ(engine_.eval1("return best.properties.PPM").as_number(), 50.0);
  EXPECT_TRUE(engine_.get_global("none").is_nil());
}

TEST_F(LuaTradingTest, WithdrawAndModifyFromScript) {
  engine_.eval(R"(
    id = trading.export("Printer", printer, {PPM = 30})
    trading.modify(id, {PPM = 60})
  )");
  const std::string id = engine_.get_global("id").as_string();
  EXPECT_DOUBLE_EQ(trader_.describe(id).properties.at("PPM").static_value().as_number(),
                   60.0);
  engine_.eval("trading.withdraw(id)");
  EXPECT_EQ(trader_.offer_count(), 0u);
}

TEST_F(LuaTradingTest, DynamicPropertyFromScript) {
  // A script-exported offer whose PPM is served by an evaluator object.
  auto evaluator = FunctionServant::make("DynamicPropEval");
  evaluator->on("evalDP", [](const ValueList&) { return Value(42.0); });
  engine_.set_global("eval_ref", Value(orb_->register_servant(evaluator)));
  engine_.eval(R"(
    trading.export("Printer", printer, {PPM = {eval = eval_ref, extra = nil}})
    offers = trading.query("Printer", "PPM == 42")
  )");
  EXPECT_DOUBLE_EQ(engine_.eval1("return #offers").as_number(), 1.0);
}

TEST_F(LuaTradingTest, LeaseAndRefreshFromScript) {
  auto clock = std::make_shared<SimClock>();
  auto orb2 = Orb::create();
  Trader leased(orb2, {.name = "lt2", .clock = clock});
  leased.types().add({.name = "Printer"});
  script::ScriptEngine eng;
  install_trading_bindings(eng, orb2, trader_refs(leased));
  eng.set_global("printer", Value(orb2->register_servant(FunctionServant::make("Printer"))));
  eng.eval(R"(id = trading.export("Printer", printer, {}, 60))");
  clock->advance(50);
  eng.eval("trading.refresh(id, 60)");
  clock->advance(50);
  EXPECT_EQ(leased.query("Printer", "").size(), 1u);
  clock->advance(100);
  EXPECT_EQ(leased.query("Printer", "").size(), 0u);
}

TEST_F(LuaTradingTest, AddTypeAndListFromScript) {
  engine_.eval(R"(
    trading.add_type("Scanner")
    names = trading.types()
  )");
  EXPECT_TRUE(trader_.types().has("Scanner"));
  EXPECT_DOUBLE_EQ(engine_.eval1("return #names").as_number(), 2.0);
}

TEST_F(LuaTradingTest, AgentScriptUsingLuaTradingEndToEnd) {
  // The paper's SIV picture: an agent script announces an offer, a client
  // script selects and calls the provider — all in Luma.
  engine_.eval(R"(
    -- agent side
    trading.export("Printer", printer, {PPM = 25, Color = false})
    -- client side
    local offer = trading.select("Printer", "PPM > 20", "max PPM")
    assert(offer ~= nil, "no printer found")
    chosen = offer.provider
  )");
  // Use the selected ref from C++ to prove it designates the live servant.
  const ObjectRef chosen = ObjectRef::parse(engine_.get_global("chosen").as_string());
  EXPECT_EQ(orb_->invoke(chosen, "print").as_string(), "ok");
}

TEST_F(LuaTradingTest, MissingServantRefRaises) {
  script::ScriptEngine eng;
  install_trading_bindings(eng, orb_, TraderRefs{});  // all refs empty
  ValueList out = eng.eval("return pcall(function() return trading.query('X') end)");
  EXPECT_FALSE(out.at(0).as_bool());
}

}  // namespace
}  // namespace adapt::trading
