// ServiceAgent tests: monitor creation, offer export with dynamic
// properties, withdrawal, and script-driven agents (paper SIV: "these
// service agents — typically implemented as Lua scripts").
#include "core/service_agent.h"

#include <gtest/gtest.h>

#include "core/infrastructure.h"

namespace adapt::core {
namespace {

using orb::FunctionServant;

class AgentTest : public ::testing::Test {
 protected:
  AgentTest() {
    trading::ServiceTypeDef type;
    type.name = "Svc";
    infra_.trader().types().add(type);
    host_ = infra_.make_host("ag-host");
    agent_ = infra_.make_agent("ag-host");
    auto servant = FunctionServant::make("Svc");
    servant->on("op", [](const ValueList&) { return Value(1.0); });
    provider_ = infra_.host_orb("ag-host")->register_servant(servant);
  }

  Infrastructure infra_{InfrastructureOptions{.name = "at" + std::to_string(counter_++)}};
  sim::HostPtr host_;
  std::shared_ptr<ServiceAgent> agent_;
  ObjectRef provider_;
  static int counter_;
};

int AgentTest::counter_ = 0;

TEST_F(AgentTest, LoadMonitorTracksHost) {
  auto mon = agent_->create_load_monitor(host_);
  host_->set_background_jobs(10.0);
  infra_.run_for(600.0);
  const Value v = mon->getvalue();
  ASSERT_TRUE(v.is_table());
  EXPECT_NEAR(v.as_table()->geti(1).as_number(), 10.0, 0.5);
  EXPECT_EQ(mon->getAspectValue("increasing").as_string(), "yes");
  host_->set_background_jobs(0.0);
  infra_.run_for(600.0);
  EXPECT_EQ(mon->getAspectValue("increasing").as_string(), "no");
}

TEST_F(AgentTest, ExportWithLoadPublishesDynamicProperties) {
  auto mon = agent_->create_load_monitor(host_);
  const std::string id = agent_->export_with_load("Svc", provider_, mon);
  EXPECT_EQ(infra_.trader().offer_count(), 1u);

  host_->set_background_jobs(30.0);
  infra_.run_for(600.0);
  // The trader sees live values through evalDP.
  auto results = infra_.trader().query("Svc", "LoadAvg > 25");
  ASSERT_EQ(results.size(), 1u);
  EXPECT_NEAR(results[0].properties.at("LoadAvg").as_number(), 30.0, 1.0);
  EXPECT_EQ(results[0].properties.at("LoadAvgIncreasing").as_string(), "yes");
  EXPECT_TRUE(results[0].properties.at("LoadAvgMonitor").is_object());
  EXPECT_EQ(results[0].properties.at("Host").as_string(), "ag-host");
  EXPECT_EQ(results[0].offer_id, id);
}

TEST_F(AgentTest, WithdrawAllOnDestruction) {
  {
    Infrastructure inner{InfrastructureOptions{.name = "at-inner"}};
    trading::ServiceTypeDef type;
    type.name = "Svc";
    inner.trader().types().add(type);
    auto host = inner.make_host("h");
    auto agent = inner.make_agent("h");
    auto servant = FunctionServant::make("Svc");
    const ObjectRef provider = inner.host_orb("h")->register_servant(servant);
    auto mon = agent->create_load_monitor(host);
    agent->export_with_load("Svc", provider, mon);
    EXPECT_EQ(inner.trader().offer_count(), 1u);
    // Infrastructure teardown destroys the agent first; the offer must go.
  }
  SUCCEED();
}

TEST_F(AgentTest, ExplicitWithdraw) {
  auto mon = agent_->create_load_monitor(host_);
  const std::string id = agent_->export_with_load("Svc", provider_, mon);
  EXPECT_EQ(agent_->offers().size(), 1u);
  agent_->withdraw(id);
  EXPECT_EQ(agent_->offers().size(), 0u);
  EXPECT_EQ(infra_.trader().offer_count(), 0u);
}

TEST_F(AgentTest, CustomMonitorProperty) {
  auto mem = std::make_shared<double>(512.0);
  auto mon = agent_->create_monitor(
      "FreeMemory",
      Value(NativeFunction::make("mem", [mem](const ValueList&) {
        return ValueList{Value(*mem)};
      })),
      30.0);
  EXPECT_DOUBLE_EQ(mon->getvalue().as_number(), 512.0);
  *mem = 256.0;
  infra_.run_for(30.0);
  EXPECT_DOUBLE_EQ(mon->getvalue().as_number(), 256.0);
  // Exported as a dynamic property under its own name.
  trading::PropertyMap props;
  props["FreeMemory"] = trading::OfferedProperty(
      trading::DynamicProperty{agent_->monitor_ref(*mon), Value()});
  agent_->export_offer("Svc", provider_, props);
  auto results = infra_.trader().query("Svc", "FreeMemory == 256");
  EXPECT_EQ(results.size(), 1u);
}

TEST_F(AgentTest, ScriptDrivenAgentExportsOffer) {
  // The agent as a Luma script (paper SIV): create a monitor and export an
  // offer entirely from script.
  agent_->engine()->set_global("provider", Value(provider_));
  agent_->run_script(R"(
    lmon = EventMonitor:new("Temperature", function() return 21.5 end, 60)
    offer_id = agent.export("Svc", provider, {
      Temperature = 21.5,
      Room = "machine-room-2",
    })
  )");
  EXPECT_EQ(infra_.trader().offer_count(), 1u);
  const Value id = agent_->engine()->get_global("offer_id");
  ASSERT_TRUE(id.is_string());
  const auto offer = infra_.trader().describe(id.as_string());
  EXPECT_EQ(offer.properties.at("Room").static_value().as_string(), "machine-room-2");
  // ...and withdraw it from script too.
  agent_->run_script("agent.withdraw(offer_id)");
  EXPECT_EQ(infra_.trader().offer_count(), 0u);
}

TEST_F(AgentTest, ScriptAgentConfiguresMonitorAspects) {
  agent_->run_script(R"(
    m = BasicMonitor:new("Queue")
    m:setvalue(3)
    m:defineAspect("busy", "function(self, v) if v > 5 then return 'yes' else return 'no' end end")
    m:setvalue(7)
  )");
  EXPECT_EQ(agent_->engine()->eval1("return m:getAspectValue('busy')").as_string(), "yes");
}

TEST_F(AgentTest, AgentScriptsSeeLuaTrading) {
  // Infrastructure-made agents can query the trader from script (SIV).
  agent_->engine()->set_global("provider", Value(provider_));
  agent_->run_script(R"(
    agent.export("Svc", provider, {Zone = "east"})
    found = trading.query("Svc", "Zone == 'east'")
  )");
  EXPECT_DOUBLE_EQ(agent_->engine()->eval1("return #found").as_number(), 1.0);
}

TEST_F(AgentTest, MonitorRefUnknownMonitorThrows) {
  auto other_engine = std::make_shared<script::ScriptEngine>();
  monitor::BasicMonitor foreign("x", other_engine);
  EXPECT_THROW(agent_->monitor_ref(foreign), Error);
}

}  // namespace
}  // namespace adapt::core
