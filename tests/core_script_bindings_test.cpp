// Infrastructure script bindings: deployments driven from Luma, including
// servers implemented in the interpreted language (paper SII claims 1-3),
// plus the new script-language features they rely on (varargs) and ORB
// deferred-synchronous invocation.
#include "core/script_bindings.h"

#include <gtest/gtest.h>

namespace adapt::core {
namespace {

class ScriptBindingsTest : public ::testing::Test {
 protected:
  ScriptBindingsTest()
      : infra_({.name = "sb" + std::to_string(counter_++)}), engine_(infra_.clock()) {
    install_infrastructure_bindings(engine_, infra_);
  }

  Infrastructure infra_;
  script::ScriptEngine engine_;
  static int counter_;
};

int ScriptBindingsTest::counter_ = 0;

TEST_F(ScriptBindingsTest, AddTypeFromScript) {
  engine_.eval("infra.add_type('ScriptedType')");
  EXPECT_TRUE(infra_.trader().types().has("ScriptedType"));
}

TEST_F(ScriptBindingsTest, HostWrapperControlsLoad) {
  engine_.eval(R"(
    h = infra.make_host('script-host')
    h:set_jobs(10)
    infra.run_for(600)
    l = h:loadavg()
  )");
  const Value l = engine_.get_global("l");
  ASSERT_TRUE(l.is_table());
  EXPECT_NEAR(l.as_table()->geti(1).as_number(), 10.0, 0.5);
  EXPECT_EQ(engine_.eval1("return h.name").as_string(), "script-host");
}

TEST_F(ScriptBindingsTest, LumaServerServesRemoteCalls) {
  engine_.eval(R"(
    infra.add_type('Echo')
    server = {}
    function server:shout(text) return text .. '!' end
    ref = infra.deploy('echo-host', 'Echo', server)
  )");
  // Call the Luma-implemented server from a plain C++ ORB client.
  const ObjectRef ref = ObjectRef::parse(engine_.get_global("ref").as_string());
  auto client = infra_.make_orb("cpp-client");
  EXPECT_EQ(client->invoke(ref, "shout", {Value("hey")}).as_string(), "hey!");
}

TEST_F(ScriptBindingsTest, LumaServerKeepsStateAcrossCalls) {
  engine_.eval(R"(
    infra.add_type('Counter')
    local counter = {n = 0}
    function counter:bump() self.n = self.n + 1 return self.n end
    infra.deploy('ctr-host', 'Counter', counter)
    p = infra.make_proxy{type = 'Counter'}
  )");
  EXPECT_DOUBLE_EQ(engine_.eval1("return p:invoke('bump')").as_number(), 1.0);
  EXPECT_DOUBLE_EQ(engine_.eval1("return p:invoke('bump')").as_number(), 2.0);
}

TEST_F(ScriptBindingsTest, DeployRecordsWorkOnHost) {
  engine_.eval(R"(
    infra.add_type('Busy')
    local s = {}
    function s:work() return true end
    infra.deploy('busy-host', 'Busy', s, 1.0)
    p = infra.make_proxy{type = 'Busy'}
    for i = 1, 20 do p:invoke('work') end
    infra.run_for(10)
  )");
  EXPECT_GT(infra_.host("busy-host")->total_work(), 19.0);
}

TEST_F(ScriptBindingsTest, FullAdaptiveScenarioFromScript) {
  engine_.eval(R"(
    infra.add_type('Svc')
    for i, name in ipairs({'s1', 's2'}) do
      local server = {}
      function server:whoami() return name end
      infra.deploy(name, 'Svc', server)
    end
    p = infra.make_proxy{
      type = 'Svc',
      constraint = "LoadAvg < 50 and LoadAvgIncreasing == 'no'",
      preference = 'min LoadAvg',
    }
    p:add_interest('LoadIncrease', [[function(o, v, m)
      return v[1] > 50 and m:getAspectValue('increasing') == 'yes'
    end]])
    p:set_strategy('LoadIncrease', [[function(self) self:_select('LoadAvg < 50') end]])
    first = p:invoke('whoami')
  )");
  EXPECT_EQ(engine_.get_global("first").as_string(), "s1");
  infra_.host("s1")->set_background_jobs(150.0);
  infra_.run_for(600.0);
  EXPECT_EQ(engine_.eval1("return p:invoke('whoami')").as_string(), "s2");
  EXPECT_GE(engine_.eval1("return p:rebinds()").as_number(), 2.0);
}

TEST_F(ScriptBindingsTest, DeployRejectsNonTableMethods) {
  engine_.eval("infra.add_type('Bad')");
  EXPECT_THROW(engine_.eval("infra.deploy('bh', 'Bad', 42)"), Error);
}

TEST_F(ScriptBindingsTest, ClockVisibleFromScript) {
  EXPECT_DOUBLE_EQ(engine_.eval1("return infra.now()").as_number(), 0.0);
  engine_.eval("infra.run_for(90)");
  EXPECT_DOUBLE_EQ(engine_.eval1("return infra.now()").as_number(), 90.0);
}

// ---- varargs (added for generic script wrappers) ---------------------------

TEST(VarargTest, ExtrasAvailableAsDots) {
  script::ScriptEngine eng;
  ValueList out = eng.eval(R"(
    function tail(first, ...) return ... end
    return tail(1, 2, 3, 4)
  )");
  ASSERT_EQ(out.size(), 3u);
  EXPECT_DOUBLE_EQ(out[0].as_number(), 2);
  EXPECT_DOUBLE_EQ(out[2].as_number(), 4);
}

TEST(VarargTest, ArgTableWithCount) {
  script::ScriptEngine eng;
  EXPECT_DOUBLE_EQ(
      eng.eval1("function f(...) return arg.n end return f('a', 'b', 'c')").as_number(), 3.0);
  EXPECT_DOUBLE_EQ(
      eng.eval1("function f(...) return arg.n end return f()").as_number(), 0.0);
}

TEST(VarargTest, DotsExpandInCallsAndTables) {
  script::ScriptEngine eng;
  ValueList out = eng.eval(R"(
    function pack(...) return {...} end
    function sum3(a, b, c) return a + b + c end
    function forward(...) return sum3(...) end
    local t = pack(10, 20, 30)
    return #t, forward(1, 2, 3)
  )");
  EXPECT_DOUBLE_EQ(out.at(0).as_number(), 3);
  EXPECT_DOUBLE_EQ(out.at(1).as_number(), 6);
}

TEST(VarargTest, DotsMidListTruncatesToOne) {
  script::ScriptEngine eng;
  ValueList out = eng.eval(R"(
    function f(...) return ..., 99 end
    return f(7, 8)
  )");
  ASSERT_EQ(out.size(), 2u);
  EXPECT_DOUBLE_EQ(out[0].as_number(), 7);
  EXPECT_DOUBLE_EQ(out[1].as_number(), 99);
}

TEST(VarargTest, DotsOutsideVarargFunctionThrows) {
  script::ScriptEngine eng;
  EXPECT_THROW(eng.eval("function f() return ... end return f()"), script::ScriptError);
}

// ---- ORB deferred-synchronous invocation -----------------------------------

TEST(InvokeAsyncTest, ResultDeliveredThroughFuture) {
  auto orb = orb::Orb::create();
  auto servant = orb::FunctionServant::make("Calc");
  servant->on("square", [](const ValueList& a) {
    return Value(a.at(0).as_number() * a.at(0).as_number());
  });
  const ObjectRef ref = orb->register_servant(servant);
  auto future = orb->invoke_async(ref, "square", {Value(9.0)});
  EXPECT_DOUBLE_EQ(future.get().as_number(), 81.0);
}

TEST(InvokeAsyncTest, ErrorsRethrownFromFuture) {
  auto orb = orb::Orb::create();
  auto servant = orb::FunctionServant::make("Calc");
  servant->on("die", [](const ValueList&) -> Value { throw Error("async boom"); });
  const ObjectRef ref = orb->register_servant(servant);
  auto ok_future = orb->invoke_async(ref, "die");
  EXPECT_THROW(ok_future.get(), orb::RemoteError);
  auto missing = orb->invoke_async(ObjectRef{"inproc://nowhere", "x", ""}, "op");
  EXPECT_THROW(missing.get(), orb::TransportError);
}

TEST(InvokeAsyncTest, ManyConcurrentRequests) {
  auto orb = orb::Orb::create();
  auto servant = orb::FunctionServant::make("Calc");
  servant->on("id", [](const ValueList& a) { return a.at(0); });
  const ObjectRef ref = orb->register_servant(servant);
  std::vector<std::future<Value>> futures;
  for (int i = 0; i < 32; ++i) {
    futures.push_back(orb->invoke_async(ref, "id", {Value(static_cast<double>(i))}));
  }
  for (int i = 0; i < 32; ++i) {
    EXPECT_DOUBLE_EQ(futures[static_cast<size_t>(i)].get().as_number(), i);
  }
}

}  // namespace
}  // namespace adapt::core
