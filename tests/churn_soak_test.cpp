// Churn/soak scenarios: a larger deployment run for hours of virtual time
// with servers joining and crashing (leases expiring), roaming load, and
// clients that must keep being served by live, suitable components
// throughout. These are invariant tests, not benchmarks.
#include <gtest/gtest.h>

#include <set>

#include "core/infrastructure.h"
#include "sim/workload.h"

namespace adapt::core {
namespace {

using orb::FunctionServant;

constexpr const char* kInterest = R"(function(observer, value, monitor)
  return value[1] > 50 and monitor:getAspectValue("increasing") == "yes"
end)";

struct Node {
  std::string name;
  ObjectRef provider;
  std::shared_ptr<ServiceAgent> agent;
  bool alive = true;
};

class ChurnTest : public ::testing::Test {
 protected:
  ChurnTest() {
    infra_.trader().types().add({.name = "Svc"});
  }

  Node deploy(const std::string& name) {
    Node node;
    node.name = name;
    auto host = infra_.make_host(name);
    auto servant = FunctionServant::make("Svc");
    servant->on("work", [name, host](const ValueList&) {
      host->record_work(0.1);
      return Value(name);
    });
    node.provider = infra_.host_orb(name)->register_servant(servant, "svc");
    node.agent = infra_.make_agent(name);
    auto mon = node.agent->create_load_monitor(host);
    node.agent->enable_heartbeat(/*period=*/30.0, /*lease=*/90.0);
    node.agent->export_with_load("Svc", node.provider, mon);
    return node;
  }

  void crash(Node& node) {
    // The server vanishes and its agent stops heartbeating — nothing is
    // withdrawn explicitly; the lease must clean up.
    infra_.host_orb(node.name)->unregister_servant("svc");
    node.agent->disable_heartbeat();
    node.alive = false;
  }

  Infrastructure infra_{InfrastructureOptions{.name = "churn" + std::to_string(counter_++)}};
  static int counter_;
};

int ChurnTest::counter_ = 0;

TEST_F(ChurnTest, ClientsSurviveServerChurn) {
  std::vector<Node> nodes;
  for (int i = 0; i < 4; ++i) nodes.push_back(deploy("n" + std::to_string(i)));

  SmartProxyConfig cfg;
  cfg.service_type = "Svc";
  cfg.constraint = "LoadAvg < 50 and LoadAvgIncreasing == 'no'";
  cfg.preference = "min LoadAvg";
  std::vector<SmartProxyPtr> proxies;
  std::vector<std::unique_ptr<sim::ClosedLoopClient>> clients;
  std::set<std::string> servers_seen;
  int served = 0;
  int failed = 0;
  for (int c = 0; c < 3; ++c) {
    auto proxy = infra_.make_proxy(cfg);
    proxy->add_interest("LoadIncrease", kInterest);
    proxy->set_strategy("LoadIncrease", [](SmartProxy& p) { p.select(); });
    clients.push_back(std::make_unique<sim::ClosedLoopClient>(
        infra_.timers(),
        [&, proxy] {
          try {
            servers_seen.insert(proxy->invoke("work").as_string());
            ++served;
          } catch (const Error&) {
            ++failed;
          }
        },
        7.0));
    clients.back()->start();
    proxies.push_back(std::move(proxy));
  }

  // Hour 1: normal operation with a roaming spike.
  sim::schedule_load_spike(*infra_.timers(), infra_.host("n0"), 600, 1800, 90);
  infra_.run_for(3600);

  // Hour 2: two servers crash (no withdraw — leases must expire), load
  // roams to another survivor.
  crash(nodes[1]);
  crash(nodes[2]);
  sim::schedule_load_spike(*infra_.timers(), infra_.host("n3"), 4200, 5400, 90);
  infra_.run_for(3600);

  // Hour 3: a replacement joins; everything keeps flowing.
  nodes.push_back(deploy("n4"));
  infra_.run_for(3600);

  for (auto& client : clients) client->stop();

  EXPECT_GT(served, 4000) << "three clients at ~514 req/hour each for 3 hours";
  // Transient failures are allowed only in the lease-expiry window right
  // after a crash (the proxy may hit the dead ref once before failover).
  EXPECT_LT(failed, 20) << "failures bounded by crash transients";
  EXPECT_GE(servers_seen.size(), 3u) << "clients migrated across servers";
  EXPECT_EQ(infra_.trader().query("Svc", "").size(), 3u)
      << "trader converged to the live servers (n0, n3, n4)";
  // Dead servers' offers are gone without any explicit withdrawal.
  for (const auto& offer : infra_.trader().query("Svc", "")) {
    const std::string host = offer.properties.at("Host").as_string();
    EXPECT_NE(host, "n1");
    EXPECT_NE(host, "n2");
  }
}

TEST_F(ChurnTest, ProxiesConvergeAfterMassCrash) {
  std::vector<Node> nodes;
  for (int i = 0; i < 3; ++i) nodes.push_back(deploy("m" + std::to_string(i)));
  SmartProxyConfig cfg;
  cfg.service_type = "Svc";
  cfg.preference = "min LoadAvg";
  auto proxy = infra_.make_proxy(cfg);
  proxy->add_interest("LoadIncrease", kInterest);
  ASSERT_TRUE(proxy->select());

  // All but one crash at once.
  crash(nodes[0]);
  crash(nodes[1]);
  infra_.run_for(120.0);  // leases expire

  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(proxy->invoke("work").as_string(), "m2");
  }
}

TEST_F(ChurnTest, TraderOfferCountTracksMembership) {
  std::vector<Node> nodes;
  for (int i = 0; i < 6; ++i) nodes.push_back(deploy("t" + std::to_string(i)));
  EXPECT_EQ(infra_.trader().query("Svc", "").size(), 6u);
  crash(nodes[0]);
  crash(nodes[3]);
  crash(nodes[5]);
  infra_.run_for(100.0);
  EXPECT_EQ(infra_.trader().query("Svc", "").size(), 3u);
  deploy("t6");
  deploy("t7");
  EXPECT_EQ(infra_.trader().query("Svc", "").size(), 5u);
}

}  // namespace
}  // namespace adapt::core
