// Statistics/profiling aspects (paper SIII) and composite monitors (SIII
// end: "the code for evaluating a property ... can contain references to
// other monitors, thus allowing the construction of arbitrarily complex
// composite properties and events").
#include "monitor/statistics.h"

#include <gtest/gtest.h>

#include "monitor/monitor_client.h"

namespace adapt::monitor {
namespace {

class StatisticsTest : public ::testing::Test {
 protected:
  StatisticsTest()
      : engine_(std::make_shared<script::ScriptEngine>()),
        mon_(std::make_shared<BasicMonitor>("Metric", engine_)) {
    install_statistics_aspects(*mon_, /*window=*/4);
  }

  void feed(std::initializer_list<double> values) {
    for (const double v : values) mon_->setvalue(Value(v));
  }

  std::shared_ptr<script::ScriptEngine> engine_;
  std::shared_ptr<BasicMonitor> mon_;
};

TEST_F(StatisticsTest, AllAspectsInstalled) {
  const auto names = mon_->definedAspects();
  EXPECT_EQ(names, (std::vector<std::string>{"history", "max", "mean", "min", "stddev",
                                             "trend"}));
}

TEST_F(StatisticsTest, HistoryKeepsWindow) {
  feed({1, 2, 3});
  const Value h = mon_->getAspectValue("history");
  ASSERT_TRUE(h.is_table());
  EXPECT_EQ(h.as_table()->length(), 3);
  feed({4, 5, 6});
  const Value h2 = mon_->getAspectValue("history");
  EXPECT_EQ(h2.as_table()->length(), 4) << "window caps the ring";
  EXPECT_DOUBLE_EQ(h2.as_table()->geti(1).as_number(), 3.0) << "oldest surviving sample";
  EXPECT_DOUBLE_EQ(h2.as_table()->geti(4).as_number(), 6.0);
}

TEST_F(StatisticsTest, MeanMinMax) {
  feed({10, 20, 30, 40});
  EXPECT_DOUBLE_EQ(mon_->getAspectValue("mean").as_number(), 25.0);
  EXPECT_DOUBLE_EQ(mon_->getAspectValue("min").as_number(), 10.0);
  EXPECT_DOUBLE_EQ(mon_->getAspectValue("max").as_number(), 40.0);
}

TEST_F(StatisticsTest, Stddev) {
  feed({2, 4, 4, 6});
  // sample stddev of {2,4,4,6}: mean 4, var (4+0+0+4)/3 = 8/3
  EXPECT_NEAR(mon_->getAspectValue("stddev").as_number(), std::sqrt(8.0 / 3.0), 1e-9);
}

TEST_F(StatisticsTest, StddevDegenerateCases) {
  feed({5});
  EXPECT_DOUBLE_EQ(mon_->getAspectValue("stddev").as_number(), 0.0);
}

TEST_F(StatisticsTest, Trend) {
  feed({1});
  EXPECT_EQ(mon_->getAspectValue("trend").as_string(), "flat");
  feed({2});
  EXPECT_EQ(mon_->getAspectValue("trend").as_string(), "up");
  feed({2});
  EXPECT_EQ(mon_->getAspectValue("trend").as_string(), "flat");
  feed({1});
  EXPECT_EQ(mon_->getAspectValue("trend").as_string(), "down");
}

TEST_F(StatisticsTest, TableValuedPropertyProfilesFirstElement) {
  // loadavg-shaped values: profile the 1-minute average.
  mon_->setvalue(Value(Table::make_array({Value(10.0), Value(5.0), Value(2.0)})));
  mon_->setvalue(Value(Table::make_array({Value(20.0), Value(6.0), Value(2.0)})));
  EXPECT_DOUBLE_EQ(mon_->getAspectValue("mean").as_number(), 15.0);
  EXPECT_EQ(mon_->getAspectValue("trend").as_string(), "up");
}

TEST_F(StatisticsTest, NonNumericSamplesSkipped) {
  feed({1, 2});
  mon_->setvalue(Value("not a number"));
  const Value h = mon_->getAspectValue("history");
  EXPECT_EQ(h.as_table()->length(), 2) << "string sample not recorded";
  EXPECT_DOUBLE_EQ(mon_->getAspectValue("mean").as_number(), 1.5);
}

TEST_F(StatisticsTest, WindowValidation) {
  EXPECT_THROW(install_statistics_aspects(*mon_, 0), MonitorError);
}

TEST_F(StatisticsTest, StatisticsServeAsDynamicProperties) {
  // The point of SIII/SIV: a derived statistic can back a trader dynamic
  // property, e.g. "mean load over the window".
  feed({30, 50});
  EXPECT_DOUBLE_EQ(mon_->evalDP("MeanMetric", Value("mean")).as_number(), 40.0);
}

TEST_F(StatisticsTest, RemoteClientSeesStatistics) {
  auto orb = orb::Orb::create();
  const ObjectRef ref = orb->register_servant(mon_);
  feed({7, 9});
  auto client_orb = orb::Orb::create();
  MonitorClient client(client_orb, ref);
  EXPECT_DOUBLE_EQ(client.getAspectValue("mean").as_number(), 8.0);
}

// ---- composite monitors ----------------------------------------------

TEST(CompositeMonitorTest, PropertyComposedFromOtherMonitors) {
  // A "ClusterLoad" monitor whose update function reads two (remote) LoadAvg
  // monitors through their wrappers — arbitrary composition in script.
  auto engine = std::make_shared<script::ScriptEngine>();
  auto orb = orb::Orb::create();

  auto mon_a = std::make_shared<BasicMonitor>("LoadA", engine);
  auto mon_b = std::make_shared<BasicMonitor>("LoadB", engine);
  mon_a->setvalue(Value(10.0));
  mon_b->setvalue(Value(30.0));
  const ObjectRef ref_a = orb->register_servant(mon_a);
  const ObjectRef ref_b = orb->register_servant(mon_b);

  auto composite = std::make_shared<BasicMonitor>("ClusterLoad", engine);
  engine->set_global("source_a", make_remote_monitor_wrapper(orb, ref_a));
  engine->set_global("source_b", make_remote_monitor_wrapper(orb, ref_b));
  composite->set_update_code(R"(function()
    return (source_a:getvalue() + source_b:getvalue()) / 2
  end)");
  composite->update_now();
  EXPECT_DOUBLE_EQ(composite->getvalue().as_number(), 20.0);

  mon_b->setvalue(Value(50.0));
  composite->update_now();
  EXPECT_DOUBLE_EQ(composite->getvalue().as_number(), 30.0);
}

TEST(CompositeMonitorTest, CompositeEventPredicateReadsOtherMonitor) {
  // An event fires based on *another* monitor's state (composite events).
  auto engine = std::make_shared<script::ScriptEngine>();
  auto orb = orb::Orb::create();
  auto backlog = std::make_shared<BasicMonitor>("Backlog", engine);
  backlog->setvalue(Value(100.0));
  engine->set_global("backlog", make_remote_monitor_wrapper(orb, orb->register_servant(backlog)));

  auto latency = std::make_shared<EventMonitor>("Latency", engine, orb);
  std::vector<std::string> events;
  auto observer = std::make_shared<CallbackObserver>(
      [&](const std::string& evid) { events.push_back(evid); });
  const ObjectRef obs_ref = orb->register_servant(observer);
  latency->attachEventObserver(obs_ref, "Saturated", R"(function(o, value, monitor)
    return value > 1.0 and backlog:getvalue() > 50
  end)");

  latency->setvalue(Value(2.0));  // latency high AND backlog high
  EXPECT_EQ(events.size(), 1u);
  backlog->setvalue(Value(10.0));
  latency->setvalue(Value(2.0));  // latency high but backlog low
  EXPECT_EQ(events.size(), 1u);
}

}  // namespace
}  // namespace adapt::monitor
