// Unit tests for adapt::Value, adapt::Table and adapt::ObjectRef.
#include "base/value.h"

#include <gtest/gtest.h>

#include "script/interpreter.h"

namespace adapt {
namespace {

TEST(ValueTest, DefaultIsNil) {
  Value v;
  EXPECT_TRUE(v.is_nil());
  EXPECT_EQ(v.type(), Value::Type::Nil);
  EXPECT_FALSE(v.truthy());
  EXPECT_EQ(v.str(), "nil");
}

TEST(ValueTest, BoolRoundtrip) {
  EXPECT_TRUE(Value(true).as_bool());
  EXPECT_FALSE(Value(false).as_bool());
  EXPECT_TRUE(Value(true).truthy());
  EXPECT_FALSE(Value(false).truthy());
  EXPECT_EQ(Value(true).str(), "true");
}

TEST(ValueTest, NumberRoundtrip) {
  EXPECT_DOUBLE_EQ(Value(3.5).as_number(), 3.5);
  EXPECT_EQ(Value(42).as_int(), 42);
  EXPECT_EQ(Value(7.0).str(), "7");
  EXPECT_EQ(Value(2.5).str(), "2.5");
  EXPECT_TRUE(Value(0.0).truthy()) << "0 is truthy in Lua semantics";
}

TEST(ValueTest, AsIntRejectsFractions) {
  EXPECT_THROW((void)Value(1.5).as_int(), TypeError);
}

TEST(ValueTest, StringRoundtrip) {
  Value v("hello");
  EXPECT_EQ(v.as_string(), "hello");
  EXPECT_EQ(v.str(), "hello");
  EXPECT_TRUE(v.truthy());
}

TEST(ValueTest, TypeMismatchThrows) {
  EXPECT_THROW((void)Value(1.0).as_string(), TypeError);
  EXPECT_THROW((void)Value("x").as_number(), TypeError);
  EXPECT_THROW((void)Value().as_table(), TypeError);
  EXPECT_THROW((void)Value(true).as_object(), TypeError);
}

TEST(ValueTest, EqualityScalars) {
  EXPECT_EQ(Value(1.0), Value(1.0));
  EXPECT_NE(Value(1.0), Value(2.0));
  EXPECT_EQ(Value("a"), Value("a"));
  EXPECT_NE(Value("a"), Value(1.0)) << "cross-type values are never equal";
  EXPECT_EQ(Value(), Value());
}

TEST(ValueTest, TableIdentityEquality) {
  auto t1 = Table::make();
  auto t2 = Table::make();
  EXPECT_EQ(Value(t1), Value(t1));
  EXPECT_NE(Value(t1), Value(t2)) << "tables compare by identity";
}

TEST(ValueTest, ObjectRefEquality) {
  ObjectRef a{"inproc://x", "obj1", "IfaceA"};
  ObjectRef b{"inproc://x", "obj1", "IfaceB"};
  ObjectRef c{"inproc://x", "obj2", "IfaceA"};
  EXPECT_EQ(Value(a), Value(b)) << "interface name is not part of identity";
  EXPECT_NE(Value(a), Value(c));
}

TEST(TableTest, SetGet) {
  auto t = Table::make();
  t->set(Value("k"), Value(1.0));
  t->seti(1, Value("first"));
  EXPECT_EQ(t->get(Value("k")).as_number(), 1.0);
  EXPECT_EQ(t->geti(1).as_string(), "first");
  EXPECT_TRUE(t->get(Value("missing")).is_nil());
}

TEST(TableTest, NilValueErases) {
  auto t = Table::make();
  t->set(Value("k"), Value(1.0));
  EXPECT_EQ(t->size(), 1u);
  t->set(Value("k"), Value());
  EXPECT_EQ(t->size(), 0u);
}

TEST(TableTest, NilKeyThrows) {
  auto t = Table::make();
  EXPECT_THROW(t->set(Value(), Value(1.0)), TypeError);
  EXPECT_TRUE(t->get(Value()).is_nil()) << "reading a nil key yields nil";
}

TEST(TableTest, IntegralDoubleKeysNormalize) {
  auto t = Table::make();
  t->set(Value(2.0), Value("two"));
  EXPECT_EQ(t->geti(2).as_string(), "two");
  t->seti(3, Value("three"));
  EXPECT_EQ(t->get(Value(3.0)).as_string(), "three");
}

TEST(TableTest, Length) {
  auto t = Table::make();
  EXPECT_EQ(t->length(), 0);
  t->seti(1, Value("a"));
  t->seti(2, Value("b"));
  t->seti(4, Value("d"));
  EXPECT_EQ(t->length(), 2) << "length stops at the first hole";
  t->set(Value("x"), Value(1.0));
  EXPECT_EQ(t->length(), 2) << "string keys do not affect length";
}

TEST(TableTest, Append) {
  auto t = Table::make();
  t->append(Value(10.0));
  t->append(Value(20.0));
  EXPECT_EQ(t->length(), 2);
  EXPECT_EQ(t->geti(2).as_number(), 20.0);
}

TEST(TableTest, MakeArray) {
  auto t = Table::make_array({Value(1.0), Value("x"), Value(true)});
  EXPECT_EQ(t->length(), 3);
  EXPECT_EQ(t->geti(1).as_number(), 1.0);
  EXPECT_EQ(t->geti(2).as_string(), "x");
  EXPECT_TRUE(t->geti(3).as_bool());
}

TEST(TableTest, MixedKeyTypesCoexist) {
  auto t = Table::make();
  t->set(Value(true), Value("bool-key"));
  t->set(Value(1.0), Value("num-key"));
  t->set(Value("1"), Value("str-key"));
  EXPECT_EQ(t->get(Value(true)).as_string(), "bool-key");
  EXPECT_EQ(t->geti(1).as_string(), "num-key");
  EXPECT_EQ(t->get(Value("1")).as_string(), "str-key");
  EXPECT_EQ(t->size(), 3u);
}

TEST(TableTest, DisplayString) {
  auto t = Table::make();
  t->seti(1, Value(10.0));
  t->set(Value("name"), Value("n"));
  const std::string s = Value(t).str();
  EXPECT_NE(s.find("[1]=10"), std::string::npos) << s;
  EXPECT_NE(s.find("name=n"), std::string::npos) << s;
}

TEST(TableTest, CyclicDisplayDoesNotHang) {
  auto t = Table::make();
  t->set(Value("self"), Value(t));
  const std::string s = Value(t).str();
  EXPECT_NE(s.find("{...}"), std::string::npos) << s;
}

TEST(ObjectRefTest, StrParseRoundtrip) {
  ObjectRef ref{"tcp://127.0.0.1:9000", "monitor-42", "EventMonitor"};
  const ObjectRef back = ObjectRef::parse(ref.str());
  EXPECT_EQ(back.endpoint, ref.endpoint);
  EXPECT_EQ(back.object_id, ref.object_id);
  EXPECT_EQ(back.interface, ref.interface);
}

TEST(ObjectRefTest, ParseRejectsMalformed) {
  EXPECT_THROW(ObjectRef::parse("no-scheme!id#iface"), Error);
  EXPECT_THROW(ObjectRef::parse("tcp://host-only"), Error);
  EXPECT_THROW(ObjectRef::parse("tcp://host!#iface"), Error);
}

TEST(ObjectRefTest, EmptyInterfaceAllowed) {
  const ObjectRef ref = ObjectRef::parse("inproc://hostA!obj#");
  EXPECT_EQ(ref.object_id, "obj");
  EXPECT_TRUE(ref.interface.empty());
}

TEST(ObjectRefTest, SlashesInEndpointAndObjectIdSurvive) {
  // ORB names ("infra/host") and object ids ("monitor/LoadAvg-1") both
  // contain '/': the stringified form must stay unambiguous.
  ObjectRef ref{"inproc://infra/host-3", "monitor/LoadAvg-1", "EventMonitor"};
  const ObjectRef back = ObjectRef::parse(ref.str());
  EXPECT_EQ(back.endpoint, "inproc://infra/host-3");
  EXPECT_EQ(back.object_id, "monitor/LoadAvg-1");
  EXPECT_EQ(back.interface, "EventMonitor");
}

TEST(NativeFunctionTest, CallThroughBase) {
  auto fn = NativeFunction::make("double", [](const ValueList& args) -> ValueList {
    return {Value(args.at(0).as_number() * 2)};
  });
  script::Interpreter interp(script::Environment::make());
  CallContext ctx{interp};
  ValueList out = fn->call(ctx, {Value(21.0)});
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].as_number(), 42.0);
}

}  // namespace
}  // namespace adapt
