// Static analyzer tests: the seeded-defect corpus (one case per diagnostic
// code), capability-policy enforcement at the ingestion points (monitor /
// agent / smart-proxy), and the obs-side rejection record.
#include "script/analysis/analyzer.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "core/service_agent.h"
#include "monitor/monitor.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "orb/orb.h"
#include "script/analysis/policy.h"
#include "script/engine.h"
#include "trading/script_bindings.h"

namespace adapt::script::analysis {
namespace {

bool has_code(const std::vector<Diagnostic>& diags, const std::string& code) {
  return std::any_of(diags.begin(), diags.end(),
                     [&](const Diagnostic& d) { return d.code == code; });
}

const Diagnostic* find_code(const std::vector<Diagnostic>& diags, const std::string& code) {
  for (const auto& d : diags) {
    if (d.code == code) return &d;
  }
  return nullptr;
}

// ---- seeded-defect corpus --------------------------------------------------
// One case per diagnostic code: the analyzer must flag each defect with the
// right code and severity, at the right line.

struct SeededDefect {
  const char* name;
  const char* source;
  const char* code;      // expected diagnostic code
  Severity severity;
  int line;              // expected diagnostic line
};

class SeededDefectTest : public ::testing::TestWithParam<SeededDefect> {};

TEST_P(SeededDefectTest, Flagged) {
  const SeededDefect& param = GetParam();
  ScriptEngine engine;
  const auto diags = engine.analyze(param.source, "=test");
  const Diagnostic* d = find_code(diags, param.code);
  ASSERT_NE(d, nullptr) << "expected a '" << param.code << "' diagnostic";
  EXPECT_EQ(d->severity, param.severity);
  EXPECT_EQ(d->line, param.line);
  EXPECT_GT(d->col, 0) << "diagnostics carry a column";
}

INSTANTIATE_TEST_SUITE_P(
    Corpus, SeededDefectTest,
    ::testing::Values(
        SeededDefect{"UndefinedGlobal", "return frobnicate", codes::kUndefinedGlobal,
                     Severity::Error, 1},
        SeededDefect{"ArityTooFew", "return string.sub('abc')", codes::kArityMismatch,
                     Severity::Error, 1},
        SeededDefect{"ArityTooMany", "return math.floor(1, 2, 3)", codes::kArityMismatch,
                     Severity::Error, 1},
        SeededDefect{"UseBeforeDecl", "local a = v\nlocal v = 1\nreturn a + v",
                     codes::kUseBeforeDecl, Severity::Warning, 1},
        SeededDefect{"UnusedLocal", "local leftover = 1\nreturn 2", codes::kUnusedLocal,
                     Severity::Warning, 1},
        SeededDefect{"UnusedParam", "f = function(a, b)\nreturn a\nend", codes::kUnusedParam,
                     Severity::Hint, 1},
        SeededDefect{"UnreachableCode",
                     "flag = 1\nif flag then\nreturn 1\nelse\nreturn 2\nend\nprint('never')",
                     codes::kUnreachableCode, Severity::Warning, 7},
        SeededDefect{"NotCallable", "return (42)()", codes::kNotCallable, Severity::Error, 1},
        SeededDefect{"VarargAtTopLevel", "local t = {...}\nreturn t",
                     codes::kVarargOutsideFunction, Severity::Error, 1},
        SeededDefect{"VarargInFixedFunction", "f = function(a)\nreturn ...\nend",
                     codes::kVarargOutsideFunction, Severity::Error, 2},
        SeededDefect{"ParseError", "function(", codes::kParseError, Severity::Error, 1},
        SeededDefect{"ShadowedLocal", "f = function()\nlocal a = 1\nlocal a = 2\nreturn a\nend",
                     codes::kShadowedLocal, Severity::Warning, 3},
        SeededDefect{"DivByZero", "local d = 0\nreturn 1 / d", codes::kDivByZero,
                     Severity::Warning, 2},
        SeededDefect{"DeadStore", "local x = 1\nx = 2\nreturn x", codes::kDeadStore,
                     Severity::Warning, 1},
        SeededDefect{"AlwaysTrueCondition",
                     "local x = 5\nif x > 1 then\nresult = 1\nend\nreturn result",
                     codes::kAlwaysTrueCondition, Severity::Warning, 2}),
    [](const ::testing::TestParamInfo<SeededDefect>& info) { return info.param.name; });

// ---- resolver details ------------------------------------------------------

TEST(AnalyzerTest, CleanChunkHasNoDiagnostics) {
  ScriptEngine engine;
  const auto diags = engine.analyze(R"(
    local total = 0
    for i = 1, 10 do
      total = total + i
    end
    result = tostring(total)
    return result
  )");
  EXPECT_TRUE(diags.empty());
}

TEST(AnalyzerTest, ChunkAssignedGlobalIsDefined) {
  ScriptEngine engine;
  // `counter` is only assigned inside a function that runs later; reading it
  // elsewhere in the chunk must not be an undefined-global error.
  const auto diags = engine.analyze(
      "bump = function() counter = (counter or 0) + 1 end\nreturn counter");
  EXPECT_FALSE(has_errors(diags));
}

TEST(AnalyzerTest, EngineGlobalsAreKnown) {
  ScriptEngine engine;
  engine.set_global("injected", Value(7.0));
  EXPECT_FALSE(has_errors(engine.analyze("return injected + 1")));
  EXPECT_TRUE(has_errors(engine.analyze("return not_injected + 1")));
}

TEST(AnalyzerTest, ShadowingLocalSuppressesArityCheck) {
  ScriptEngine engine;
  const auto diags = engine.analyze(R"(
    local math = {floor = function(a, b) return a end}
    return math.floor(1, 2, 3)
  )");
  EXPECT_FALSE(has_code(diags, codes::kArityMismatch));
}

TEST(AnalyzerTest, ExpandableLastArgumentRelaxesArity) {
  ScriptEngine engine;
  // A trailing call may expand to any number of values: not provably wrong.
  EXPECT_FALSE(has_errors(engine.analyze(
      "parts = function() return 'a', 1 end\nreturn string.sub(parts())")));
}

TEST(AnalyzerTest, MethodCallsAreNotArityChecked) {
  ScriptEngine engine;
  engine.set_global("obj", Value(Table::make()));
  EXPECT_FALSE(has_errors(engine.analyze("return obj:anything(1, 2, 3, 4, 5)")));
}

TEST(AnalyzerTest, VarargInsideVarargFunctionIsFine) {
  ScriptEngine engine;
  EXPECT_FALSE(has_errors(engine.analyze("f = function(...) return arg end\nreturn f")));
}

TEST(AnalyzerTest, DiagnosticsOrderedByPosition) {
  ScriptEngine engine;
  const auto diags = engine.analyze("x = nosuch1\ny = nosuch2");
  ASSERT_EQ(diags.size(), 2u);
  EXPECT_LT(diags[0].line, diags[1].line);
}

TEST(AnalyzerTest, ParseErrorCarriesPosition) {
  ScriptEngine engine;
  const auto diags = engine.analyze("return 1 +");
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].code, codes::kParseError);
  EXPECT_EQ(diags[0].severity, Severity::Error);
  EXPECT_GT(diags[0].line, 0);
}

TEST(AnalyzerTest, ShadowedLocalFromEnclosingBlockWarned) {
  ScriptEngine engine;
  const auto diags = engine.analyze(
      "f = function()\n"
      "local a = 1\n"
      "if a > 0 then\n"
      "local a = 2\n"
      "return a\n"
      "end\n"
      "return a\n"
      "end");
  const Diagnostic* d = find_code(diags, codes::kShadowedLocal);
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->line, 4);
  EXPECT_NE(d->message.find("enclosing"), std::string::npos) << d->message;
}

TEST(AnalyzerTest, NestedShadowingReportsEachUnusedLocalExactlyOnce) {
  ScriptEngine engine;
  // Outer and inner `a` are both unused: one unused-local each, no
  // duplicates from the shadowing bookkeeping.
  const auto diags = engine.analyze(
      "f = function(flag)\n"
      "local a = 1\n"
      "if flag then\n"
      "local a = 2\n"
      "end\n"
      "end");
  const auto unused = std::count_if(diags.begin(), diags.end(), [](const Diagnostic& d) {
    return d.code == codes::kUnusedLocal;
  });
  EXPECT_EQ(unused, 2);
  EXPECT_TRUE(has_code(diags, codes::kShadowedLocal));
}

TEST(AnalyzerTest, ShadowingRedeclarationKeepsUnusedLocalFinding) {
  ScriptEngine engine;
  // The first `a` is never read before being redeclared: the scope-map
  // overwrite must not swallow its unused-local finding.
  const auto diags = engine.analyze(
      "f = function()\nlocal a = 1\nlocal a = 2\nreturn a\nend");
  EXPECT_TRUE(has_code(diags, codes::kShadowedLocal));
  const Diagnostic* unused = find_code(diags, codes::kUnusedLocal);
  ASSERT_NE(unused, nullptr);
  EXPECT_EQ(unused->line, 2) << "the overwritten declaration is the unused one";
}

// ---- capability policies ---------------------------------------------------

TEST(PolicyTest, MonitorPolicyRefusesPrivilegedNamespaces) {
  ScriptEngine engine;
  // Simulate an engine whose catalog knows the trading bindings.
  engine.natives().declare("trading.query", 1, 4);
  engine.natives().tag("trading", "trading");
  const auto diags = engine.analyze("return trading.query('Svc')", "=mon",
                                    &monitor_policy());
  const Diagnostic* d = find_code(diags, codes::kPolicyViolation);
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->severity, Severity::Error);
  // Without a policy the same read is fine.
  EXPECT_FALSE(has_errors(engine.analyze("return trading.query('Svc')")));
}

TEST(PolicyTest, StrategyPolicyAllowsTradingButShellAllowsAll) {
  ScriptEngine engine;
  engine.natives().declare("trading.query", 1, 4);
  engine.natives().tag("trading", "trading");
  EXPECT_FALSE(
      has_errors(engine.analyze("return trading.query('Svc')", "=s", &strategy_policy())));
  EXPECT_FALSE(
      has_errors(engine.analyze("return trading.query('Svc')", "=sh", &shell_policy())));
}

TEST(PolicyTest, MonitorPolicyAllowsObsAndIo) {
  ScriptEngine engine;
  engine.natives().declare("metrics.counter", 1, 2);
  engine.natives().tag("metrics", "obs");
  const auto diags = engine.analyze(
      "readfrom('data.txt')\nreturn metrics.counter('x')", "=mon", &monitor_policy());
  EXPECT_FALSE(has_errors(diags));
}

TEST(PolicyTest, FindPolicyByName) {
  EXPECT_EQ(find_policy("monitor"), &monitor_policy());
  EXPECT_EQ(find_policy("strategy"), &strategy_policy());
  EXPECT_EQ(find_policy("shell"), &shell_policy());
  EXPECT_EQ(find_policy("nope"), nullptr);
}

// ---- enforcement at the ingestion points -----------------------------------

class EnforcementTest : public ::testing::Test {
 protected:
  EnforcementTest()
      : engine_(std::make_shared<ScriptEngine>()), orb_(orb::Orb::create()) {}

  std::shared_ptr<ScriptEngine> engine_;
  orb::OrbPtr orb_;
};

TEST_F(EnforcementTest, MonitorRejectsOverPrivilegedAspect) {
  // The monitor's engine has the trading bindings installed (as an agent
  // engine would); a shipped aspect trying to reach them must be refused
  // *before execution*, with the refusal recorded in obs.
  trading::install_trading_bindings(*engine_, orb_, {});
  auto mon = std::make_shared<monitor::BasicMonitor>("Load", engine_);
  const uint64_t rejected_before = obs::metrics().counter("luma.lint.rejected").value();

  EXPECT_THROW(mon->defineAspect("exfil",
                                 "function(self, v, m) return trading.query('Svc') end"),
               monitor::MonitorError);
  EXPECT_TRUE(mon->definedAspects().empty()) << "nothing installed";
  EXPECT_EQ(obs::metrics().counter("luma.lint.rejected").value(), rejected_before + 1);

  // The rejection is a span event carrying the chunk and diagnostic code.
  const auto spans = obs::default_tracer().recent();
  const auto it = std::find_if(spans.rbegin(), spans.rend(), [](const obs::Span& s) {
    return s.name == "luma.lint.reject";
  });
  ASSERT_NE(it, spans.rend());
  EXPECT_FALSE(it->ok);
  bool saw_chunk = false;
  for (const auto& [k, v] : it->annotations) {
    if (k == "chunk") {
      saw_chunk = true;
      EXPECT_EQ(v, "aspect:exfil");
    }
  }
  EXPECT_TRUE(saw_chunk);
}

TEST_F(EnforcementTest, MonitorRejectsUndefinedGlobalInAspect) {
  auto mon = std::make_shared<monitor::BasicMonitor>("Load", engine_);
  try {
    mon->defineAspect("typo", "function(self, v, m) return treshold + v end");
    FAIL() << "expected rejection";
  } catch (const monitor::MonitorError& e) {
    EXPECT_NE(std::string(e.what()).find("undefined-global"), std::string::npos)
        << e.what();
    EXPECT_NE(std::string(e.what()).find("aspect:typo"), std::string::npos) << e.what();
  }
}

TEST_F(EnforcementTest, PaperFig3AspectStillInstalls) {
  // The paper's Fig. 3 "increasing" aspect, verbatim — unused `monitor`
  // param and all — must pass the monitor policy (hints do not reject).
  auto mon = std::make_shared<monitor::BasicMonitor>("LoadAvg", engine_);
  mon->defineAspect("increasing", R"(function(self, currval, monitor)
  if currval[1] > currval[2] then
    return "yes"
  else
    return "no"
  end
end)");
  mon->setvalue(Value(Table::make_array({Value(3.0), Value(1.0), Value(1.0)})));
  EXPECT_EQ(mon->getAspectValue("increasing").as_string(), "yes");
}

TEST_F(EnforcementTest, MonitorRejectsBadPredicate) {
  auto mon = std::make_shared<monitor::EventMonitor>("Load", engine_, orb_);
  const uint64_t rejected_before = obs::metrics().counter("luma.lint.rejected").value();
  EXPECT_THROW(mon->attachEventObserver(ObjectRef{}, "Ev",
                                        "function(o, v, m) return no_such_flag end"),
               monitor::MonitorError);
  EXPECT_EQ(mon->observer_count(), 0u);
  EXPECT_EQ(obs::metrics().counter("luma.lint.rejected").value(), rejected_before + 1);
  // A well-formed predicate still attaches.
  mon->attachEventObserver(ObjectRef{}, "Ev", "function(o, v, m) return v[1] > 50 end");
  EXPECT_EQ(mon->observer_count(), 1u);
}

TEST_F(EnforcementTest, AgentRejectsBadStrategyUploadBeforeExecution) {
  auto timers = std::make_shared<TimerService>(std::make_shared<SimClock>());
  core::ServiceAgent agent(orb_, ObjectRef{}, timers, {});
  const uint64_t rejected_before = obs::metrics().counter("luma.lint.rejected").value();
  // The upload assigns a marker global before tripping the analyzer; since
  // verification precedes execution, the marker must never appear.
  try {
    agent.run_script("marker = 1\nreturn no_such_global");
    FAIL() << "expected rejection";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("undefined-global"), std::string::npos)
        << e.what();
  }
  EXPECT_TRUE(agent.engine()->get_global("marker").is_nil())
      << "rejected script must not have run at all";
  EXPECT_EQ(obs::metrics().counter("luma.lint.rejected").value(), rejected_before + 1);

  // An accepted upload runs unchanged.
  agent.run_script("marker = 2");
  EXPECT_DOUBLE_EQ(agent.engine()->get_global("marker").as_number(), 2.0);
}

TEST_F(EnforcementTest, ReinstallServesVerdictFromCacheAndCountsIt) {
  // Monitors re-verify aspect code on every install; the second install of
  // identical code must be served from the engine's verdict cache, visible
  // as a `luma.lint.cache_hit` tick alongside the `luma.lint.analyzed` one.
  auto mon = std::make_shared<monitor::BasicMonitor>("Load", engine_);
  const char* code = "function(self, v, m) return v[1] end";
  const uint64_t analyzed_before = obs::metrics().counter("luma.lint.analyzed").value();
  const uint64_t hits_before = obs::metrics().counter("luma.lint.cache_hit").value();

  mon->defineAspect("first", code);
  EXPECT_EQ(obs::metrics().counter("luma.lint.analyzed").value(), analyzed_before + 1);
  EXPECT_EQ(obs::metrics().counter("luma.lint.cache_hit").value(), hits_before);

  mon->defineAspect("second", code);
  EXPECT_EQ(obs::metrics().counter("luma.lint.analyzed").value(), analyzed_before + 2);
  EXPECT_EQ(obs::metrics().counter("luma.lint.cache_hit").value(), hits_before + 1);
}

TEST_F(EnforcementTest, MonitorRejectsUnboundedAspect) {
  // Aspect evaluators run on the monitor's update hot path: the monitor
  // policy certifies cost, so a provably unbounded loop is refused.
  auto mon = std::make_shared<monitor::BasicMonitor>("Load", engine_);
  try {
    mon->defineAspect("spin", "function(self, v, m)\nwhile true do\nv = v\nend\nend");
    FAIL() << "expected rejection";
  } catch (const monitor::MonitorError& e) {
    EXPECT_NE(std::string(e.what()).find("unbounded-loop"), std::string::npos) << e.what();
  }
  EXPECT_TRUE(mon->definedAspects().empty());
}

TEST_F(EnforcementTest, MonitorRejectsUpdateCodeWithParseError) {
  auto mon = std::make_shared<monitor::BasicMonitor>("Load", engine_);
  try {
    mon->set_update_code("function() return oops(");
    FAIL() << "expected rejection";
  } catch (const monitor::MonitorError& e) {
    EXPECT_NE(std::string(e.what()).find("parse-error"), std::string::npos) << e.what();
  }
}

}  // namespace
}  // namespace adapt::script::analysis
