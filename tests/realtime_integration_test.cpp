// Real-time integration: the full stack on wall-clock time — monitors tick
// on the TimerService dispatcher thread while clients invoke from other
// threads, optionally over real TCP sockets. Periods are tens of
// milliseconds so each test finishes in about a second; the point is the
// *threading*, which virtual-time tests never exercise.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "core/infrastructure.h"

namespace adapt::core {
namespace {

using orb::FunctionServant;

/// Waits until `cond` is true or ~2 s have passed.
bool wait_for(const std::function<bool()>& cond) {
  for (int i = 0; i < 400; ++i) {
    if (cond()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  return cond();
}

InfrastructureOptions realtime_options(const std::string& name, bool tcp = false) {
  InfrastructureOptions options;
  options.simulated_time = false;
  options.tcp = tcp;
  options.monitor_period = 0.02;  // 20 ms ticks
  options.name = name;
  return options;
}

TEST(RealtimeTest, MonitorsTickOnDispatcherThread) {
  Infrastructure infra(realtime_options("rt-ticks"));
  infra.trader().types().add({.name = "Svc"});
  auto host = infra.make_host("h");
  auto agent = infra.make_agent("h");
  auto mon = agent->create_load_monitor(host);
  host->set_background_jobs(5.0);
  EXPECT_TRUE(wait_for([&] { return mon->update_count() >= 5; }));
  EXPECT_TRUE(mon->getvalue().is_table());
}

TEST(RealtimeTest, EventNotificationAcrossThreads) {
  Infrastructure infra(realtime_options("rt-events"));
  infra.trader().types().add({.name = "Svc"});
  auto servant = FunctionServant::make("Svc");
  servant->on("op", [](const ValueList&) { return Value(); });
  infra.deploy_server("h", "Svc", servant);

  SmartProxyConfig cfg;
  cfg.service_type = "Svc";
  auto proxy = infra.make_proxy(cfg);
  proxy->add_interest("LoadIncrease", "function(o, v, m) return v[1] > 3 end");
  std::atomic<int> strategy_runs{0};
  proxy->set_strategy("LoadIncrease", [&](SmartProxy&) { ++strategy_runs; });
  ASSERT_TRUE(proxy->select());

  infra.host("h")->set_background_jobs(500.0);
  // Host sampling (5 s virtual period scaled by... real clock) — the host
  // samples on its own 5 s schedule; to keep this fast, poke the load
  // average by waiting for monitor ticks that see rising ready_jobs.
  // The 1-minute window needs ready jobs folded in, which happens on the
  // host sampler; with RealClock that is every 5 s — too slow. Drive the
  // monitor with setvalue instead (still crosses threads via the ORB).
  auto mon = proxy->current_monitor();
  ASSERT_TRUE(mon.valid());
  mon.setvalue(Value(Table::make_array({Value(10.0), Value(1.0), Value(0.5)})));
  EXPECT_TRUE(wait_for([&] { return proxy->pending_events() > 0; }));
  proxy->invoke("op");
  EXPECT_GE(strategy_runs.load(), 1);
}

TEST(RealtimeTest, ConcurrentClientsAgainstTickingMonitors) {
  Infrastructure infra(realtime_options("rt-concurrent"));
  infra.trader().types().add({.name = "Svc"});
  auto servant = FunctionServant::make("Svc");
  std::atomic<int> served{0};
  servant->on("op", [&](const ValueList&) {
    ++served;
    return Value();
  });
  infra.deploy_server("h1", "Svc", servant);
  infra.deploy_server("h2", "Svc", servant);

  constexpr int kThreads = 4;
  constexpr int kCalls = 50;
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      SmartProxyConfig cfg;
      cfg.service_type = "Svc";
      cfg.preference = "min LoadAvg";
      auto proxy = infra.make_proxy(cfg);
      proxy->add_interest("LoadIncrease", "function(o, v, m) return v[1] > 1 end");
      proxy->set_strategy("LoadIncrease", [](SmartProxy& p) { p.select(); });
      for (int i = 0; i < kCalls; ++i) {
        try {
          proxy->invoke("op");
        } catch (const Error&) {
          ++failures;
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(served.load(), kThreads * kCalls);
}

TEST(RealtimeTest, FullTcpDeploymentWithLiveMonitoring) {
  Infrastructure infra(realtime_options("rt-tcp", /*tcp=*/true));
  infra.trader().types().add({.name = "Svc"});
  auto servant = FunctionServant::make("Svc");
  servant->on("whoami", [](const ValueList&) { return Value("tcp-live"); });
  const ObjectRef provider = infra.deploy_server("h", "Svc", servant);
  ASSERT_EQ(provider.endpoint.rfind("tcp://", 0), 0u);

  SmartProxyConfig cfg;
  cfg.service_type = "Svc";
  auto proxy = infra.make_proxy(cfg);
  proxy->add_interest("LoadIncrease", "function(o, v, m) return false end");
  EXPECT_EQ(proxy->invoke("whoami").as_string(), "tcp-live");
  auto mon = proxy->current_monitor();
  ASSERT_TRUE(mon.valid());
  // The monitor keeps updating on its dispatcher thread while we read it
  // over TCP from this thread.
  const uint64_t before = infra.trader().dynamic_evals();
  EXPECT_TRUE(wait_for([&] {
    return infra.trader().query("Svc", "LoadAvg >= 0").size() == 1;
  }));
  EXPECT_GT(infra.trader().dynamic_evals(), before);
}

TEST(RealtimeTest, HeartbeatOnWallClock) {
  Infrastructure infra(realtime_options("rt-hb"));
  infra.trader().types().add({.name = "Svc"});
  infra.make_host("h");
  auto agent = infra.make_agent("h");
  const ObjectRef provider =
      infra.host_orb("h")->register_servant(FunctionServant::make("Svc"));
  agent->enable_heartbeat(/*period=*/0.02, /*lease=*/0.2);
  agent->export_offer("Svc", provider, {});
  std::this_thread::sleep_for(std::chrono::milliseconds(400));
  EXPECT_EQ(infra.trader().query("Svc", "").size(), 1u) << "kept alive by heartbeats";
  agent->disable_heartbeat();
  EXPECT_TRUE(wait_for([&] { return infra.trader().query("Svc", "").empty(); }))
      << "expired after heartbeats stopped";
}

}  // namespace
}  // namespace adapt::core
