// TimingServant: per-operation service-time measurement and the paper's
// SIII response-time monitor example, end to end with a trader dynamic
// property. Plus large-payload and mixed-traffic TCP stress tests.
#include "orb/timing_servant.h"

#include <gtest/gtest.h>

#include <thread>

#include "monitor/monitor.h"
#include "trading/trader.h"

namespace adapt::orb {
namespace {

/// Deterministic "clock" ticking a fixed amount per now() call, so service
/// times are exact without real sleeping.
class TickClock final : public Clock {
 public:
  explicit TickClock(double step) : step_(step) {}
  [[nodiscard]] double now() const override { return t_ += step_; }
  void sleep_for(double) override {}
  [[nodiscard]] bool is_virtual() const override { return true; }

 private:
  double step_;
  mutable double t_ = 0;
};

std::shared_ptr<FunctionServant> make_worker() {
  auto servant = FunctionServant::make("Worker");
  servant->on("fast", [](const ValueList&) { return Value(1.0); });
  servant->on("slow", [](const ValueList&) { return Value(2.0); });
  servant->on("fail", [](const ValueList&) -> Value { throw Error("kaput"); });
  return servant;
}

TEST(TimingServantTest, CountsAndMeans) {
  // Each dispatch calls now() twice -> 2 * step per call with TickClock.
  auto timed = std::make_shared<TimingServant>(make_worker(),
                                               std::make_shared<TickClock>(0.5));
  timed->dispatch("fast", {});
  timed->dispatch("fast", {});
  timed->dispatch("slow", {});
  const auto fast = timed->stats("fast");
  EXPECT_EQ(fast.count, 2u);
  EXPECT_DOUBLE_EQ(fast.mean_seconds(), 0.5);
  EXPECT_EQ(timed->stats().count, 3u);
  EXPECT_EQ(timed->stats("nothing").count, 0u);
}

TEST(TimingServantTest, FailuresAreTimedToo) {
  auto timed = std::make_shared<TimingServant>(make_worker(),
                                               std::make_shared<TickClock>(0.1));
  EXPECT_THROW(timed->dispatch("fail", {}), Error);
  EXPECT_EQ(timed->stats("fail").count, 1u);
}

TEST(TimingServantTest, ResetClears) {
  auto timed = std::make_shared<TimingServant>(make_worker(),
                                               std::make_shared<TickClock>(0.1));
  timed->dispatch("fast", {});
  timed->reset();
  EXPECT_EQ(timed->stats().count, 0u);
}

TEST(TimingServantTest, WallClockMeasurement) {
  auto servant = FunctionServant::make("Sleepy");
  servant->on("nap", [](const ValueList&) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    return Value();
  });
  auto timed = std::make_shared<TimingServant>(servant, std::make_shared<RealClock>());
  auto orb = Orb::create();
  const ObjectRef ref = orb->register_servant(timed);
  orb->invoke(ref, "nap");
  EXPECT_GE(timed->stats("nap").mean_seconds(), 0.004);
  EXPECT_GE(timed->stats("nap").max_seconds, 0.004);
}

TEST(TimingServantTest, TransparentToCallers) {
  auto timed = std::make_shared<TimingServant>(make_worker(),
                                               std::make_shared<RealClock>());
  auto orb = Orb::create();
  const ObjectRef ref = orb->register_servant(timed);
  EXPECT_EQ(ref.interface, "Worker") << "decorator preserves the interface name";
  EXPECT_DOUBLE_EQ(orb->invoke(ref, "fast").as_number(), 1.0);
  EXPECT_THROW(orb->invoke(ref, "fail"), RemoteError);
  EXPECT_THROW(orb->invoke(ref, "missing"), BadOperation);
}

TEST(TimingServantTest, ResponseTimeMonitorEndToEnd) {
  // The paper's SIII example: a ResponseTime property at the trader, served
  // live by a monitor fed from the timing decorator.
  auto orb = Orb::create();
  auto timed = std::make_shared<TimingServant>(make_worker(),
                                               std::make_shared<TickClock>(0.25));
  const ObjectRef provider = orb->register_servant(timed);

  auto engine = std::make_shared<script::ScriptEngine>();
  auto mon = std::make_shared<monitor::BasicMonitor>("ResponseTime", engine);
  mon->set_update_function(Value(timed->make_monitor_source()));
  const ObjectRef mon_ref = orb->register_servant(mon);

  trading::Trader trader(orb, {.name = "rt-trader"});
  trader.types().add({.name = "Timed"});
  trading::PropertyMap props;
  props["ResponseTime"] =
      trading::OfferedProperty(trading::DynamicProperty{mon_ref, Value()});
  trader.export_offer("Timed", provider, props);

  orb->invoke(provider, "fast");
  mon->update_now();
  const auto offers = trader.query("Timed", "ResponseTime < 1");
  ASSERT_EQ(offers.size(), 1u);
  EXPECT_DOUBLE_EQ(offers[0].properties.at("ResponseTime").as_number(), 0.25);
}

TEST(TimingServantTest, SourceOutlivedByMonitorFailsSoft) {
  auto engine = std::make_shared<script::ScriptEngine>();
  auto mon = std::make_shared<monitor::BasicMonitor>("ResponseTime", engine);
  {
    auto timed = std::make_shared<TimingServant>(make_worker(),
                                                 std::make_shared<RealClock>());
    mon->set_update_function(Value(timed->make_monitor_source()));
    mon->update_now();
  }
  // Servant destroyed: updates fail with a warning, old value retained.
  EXPECT_NO_THROW(mon->update_now());
}

// ---- TCP stress -------------------------------------------------------------

TEST(TcpStressTest, MegabytePayloadRoundtrip) {
  auto server = Orb::create({.name = "stress-server", .listen_tcp = true});
  auto servant = FunctionServant::make("Blob");
  servant->on("bounce", [](const ValueList& a) { return a.at(0); });
  const ObjectRef ref = server->register_servant(servant);
  auto client = Orb::create({.name = "stress-client"});
  std::string blob(1 << 20, 'x');
  for (size_t i = 0; i < blob.size(); i += 97) blob[i] = static_cast<char>('a' + i % 23);
  const Value out = client->invoke(ref, "bounce", {Value(blob)});
  EXPECT_EQ(out.as_string(), blob);
}

TEST(TcpStressTest, MixedOnewayAndTwowayTraffic) {
  auto server = Orb::create({.name = "stress-mixed-server", .listen_tcp = true});
  auto count = std::make_shared<std::atomic<int>>(0);
  auto servant = FunctionServant::make("Mixed");
  servant->on("note", [count](const ValueList&) {
    ++*count;
    return Value();
  });
  servant->on("ask", [count](const ValueList&) {
    return Value(static_cast<double>(count->load()));
  });
  const ObjectRef ref = server->register_servant(servant);
  auto client = Orb::create({.name = "stress-mixed-client"});
  for (int i = 0; i < 50; ++i) {
    client->invoke_oneway(ref, "note");
    client->invoke(ref, "ask");
  }
  for (int i = 0; i < 200 && count->load() < 50; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  EXPECT_EQ(count->load(), 50);
}

}  // namespace
}  // namespace adapt::orb
