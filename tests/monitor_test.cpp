// LuaMonitor tests: BasicMonitor values, aspects (Fig. 1), event monitors and
// observers (Fig. 2), timer-driven updates, the dynamic-property bridge, and
// remote access through MonitorClient.
#include "monitor/monitor.h"

#include <gtest/gtest.h>

#include "monitor/bindings.h"
#include "monitor/monitor_client.h"

namespace adapt::monitor {
namespace {

using orb::Orb;
using orb::OrbPtr;
using script::ScriptEngine;

class MonitorTest : public ::testing::Test {
 protected:
  MonitorTest()
      : clock_(std::make_shared<SimClock>()),
        timers_(std::make_shared<TimerService>(clock_)),
        engine_(std::make_shared<ScriptEngine>(clock_)),
        orb_(Orb::create()) {}

  std::shared_ptr<SimClock> clock_;
  std::shared_ptr<TimerService> timers_;
  std::shared_ptr<ScriptEngine> engine_;
  OrbPtr orb_;
};

// ---- BasicMonitor ----------------------------------------------------------

TEST_F(MonitorTest, GetSetValue) {
  auto mon = std::make_shared<BasicMonitor>("prop", engine_);
  EXPECT_TRUE(mon->getvalue().is_nil());
  mon->setvalue(Value(3.5));
  EXPECT_DOUBLE_EQ(mon->getvalue().as_number(), 3.5);
}

TEST_F(MonitorTest, UpdateFunctionFromCode) {
  auto mon = std::make_shared<BasicMonitor>("prop", engine_);
  engine_->set_global("source", Value(10.0));
  mon->set_update_code("function() return source * 2 end");
  mon->update_now();
  EXPECT_DOUBLE_EQ(mon->getvalue().as_number(), 20.0);
  engine_->set_global("source", Value(50.0));
  mon->update_now();
  EXPECT_DOUBLE_EQ(mon->getvalue().as_number(), 100.0);
  EXPECT_EQ(mon->update_count(), 2u);
}

TEST_F(MonitorTest, UpdateFunctionFromNative) {
  auto mon = std::make_shared<BasicMonitor>("prop", engine_);
  auto n = std::make_shared<double>(1.0);
  mon->set_update_function(Value(NativeFunction::make("src", [n](const ValueList&) {
    return ValueList{Value(*n)};
  })));
  mon->update_now();
  EXPECT_DOUBLE_EQ(mon->getvalue().as_number(), 1.0);
  *n = 7.0;
  mon->update_now();
  EXPECT_DOUBLE_EQ(mon->getvalue().as_number(), 7.0);
}

TEST_F(MonitorTest, FailingUpdateKeepsOldValue) {
  auto mon = std::make_shared<BasicMonitor>("prop", engine_);
  mon->setvalue(Value(1.0));
  mon->set_update_code("function() error('sensor offline') end");
  mon->update_now();
  EXPECT_DOUBLE_EQ(mon->getvalue().as_number(), 1.0);
}

TEST_F(MonitorTest, PeriodicUpdatesViaTimerService) {
  auto mon = std::make_shared<BasicMonitor>("prop", engine_);
  engine_->eval("n = 0");
  mon->set_update_code("function() n = n + 1 return n end");
  mon->start(timers_, 60.0);  // paper: update values every minute
  timers_->run_for(300.0);
  EXPECT_DOUBLE_EQ(mon->getvalue().as_number(), 5.0);
  mon->stop();
  timers_->run_for(300.0);
  EXPECT_DOUBLE_EQ(mon->getvalue().as_number(), 5.0);
}

TEST_F(MonitorTest, StopIsIdempotentAndRestartable) {
  auto mon = std::make_shared<BasicMonitor>("prop", engine_);
  engine_->eval("n = 0");
  mon->set_update_code("function() n = n + 1 return n end");
  mon->start(timers_, 10.0);
  mon->start(timers_, 5.0);  // restart with a new period replaces the task
  timers_->run_for(10.0);
  EXPECT_DOUBLE_EQ(mon->getvalue().as_number(), 2.0);
  mon->stop();
  mon->stop();
}

// ---- aspects (Fig. 1) ----------------------------------------------------

TEST_F(MonitorTest, DefineAspectAndGetValue) {
  auto mon = std::make_shared<BasicMonitor>("LoadAvg", engine_);
  mon->defineAspect("doubled", "function(self, currval, monitor) return currval * 2 end");
  mon->setvalue(Value(21.0));
  EXPECT_DOUBLE_EQ(mon->getAspectValue("doubled").as_number(), 42.0);
}

TEST_F(MonitorTest, PaperFig3IncreasingAspect) {
  // The exact aspect from the paper's Fig. 3 lines 14-21.
  auto mon = std::make_shared<BasicMonitor>("LoadAvg", engine_);
  mon->defineAspect("increasing", R"(function(self, currval, monitor)
    if currval[1] > currval[2] then
      return "yes"
    else
      return "no"
    end
  end)");
  mon->setvalue(Value(Table::make_array({Value(2.0), Value(1.0), Value(0.5)})));
  EXPECT_EQ(mon->getAspectValue("increasing").as_string(), "yes");
  mon->setvalue(Value(Table::make_array({Value(0.5), Value(1.0), Value(0.5)})));
  EXPECT_EQ(mon->getAspectValue("increasing").as_string(), "no");
}

TEST_F(MonitorTest, AspectsKeepStateInSelf) {
  auto mon = std::make_shared<BasicMonitor>("prop", engine_);
  mon->defineAspect("count", R"(function(self, currval, monitor)
    self.n = (self.n or 0) + 1
    return self.n
  end)");
  mon->setvalue(Value(1.0));
  mon->setvalue(Value(2.0));
  mon->setvalue(Value(3.0));
  EXPECT_DOUBLE_EQ(mon->getAspectValue("count").as_number(), 3.0);
}

TEST_F(MonitorTest, AspectsCanReadOtherAspects) {
  auto mon = std::make_shared<BasicMonitor>("prop", engine_);
  mon->defineAspect("base", "function(self, currval, monitor) return currval + 1 end");
  // Aspect ordering is alphabetical in refresh; "derived" > "base" so it can
  // read the freshly computed "base" through the monitor wrapper.
  mon->defineAspect("derived", R"(function(self, currval, monitor)
    return monitor:getAspectValue('base') * 10
  end)");
  mon->setvalue(Value(4.0));
  EXPECT_DOUBLE_EQ(mon->getAspectValue("derived").as_number(), 50.0);
}

TEST_F(MonitorTest, DefinedAspectsListsNames) {
  auto mon = std::make_shared<BasicMonitor>("prop", engine_);
  mon->defineAspect("a", "function() return 1 end");
  mon->defineAspect("b", "function() return 2 end");
  EXPECT_EQ(mon->definedAspects(), (std::vector<std::string>{"a", "b"}));
  mon->removeAspect("a");
  EXPECT_EQ(mon->definedAspects(), (std::vector<std::string>{"b"}));
}

TEST_F(MonitorTest, UnknownAspectThrows) {
  auto mon = std::make_shared<BasicMonitor>("prop", engine_);
  EXPECT_THROW(mon->getAspectValue("nope"), MonitorError);
}

TEST_F(MonitorTest, BadAspectCodeThrowsAtDefineTime) {
  auto mon = std::make_shared<BasicMonitor>("prop", engine_);
  EXPECT_THROW(mon->defineAspect("bad", "function(self oops"), Error);
  EXPECT_THROW(mon->defineAspect("notfn", "42"), Error);
}

TEST_F(MonitorTest, FailingAspectDoesNotBreakOthers) {
  auto mon = std::make_shared<BasicMonitor>("prop", engine_);
  mon->defineAspect("bad", "function() error('aspect broken') end");
  mon->defineAspect("good", "function(self, v) return v end");
  mon->setvalue(Value(5.0));
  EXPECT_DOUBLE_EQ(mon->getAspectValue("good").as_number(), 5.0);
}

// ---- dynamic property bridge ------------------------------------------------

TEST_F(MonitorTest, EvalDPServesPropertyAndAspects) {
  auto mon = std::make_shared<BasicMonitor>("LoadAvg", engine_);
  mon->defineAspect("increasing", "function(self, v) return 'no' end");
  mon->setvalue(Value(12.0));
  EXPECT_DOUBLE_EQ(mon->evalDP("LoadAvg", Value()).as_number(), 12.0);
  EXPECT_EQ(mon->evalDP("LoadAvgIncreasing", Value("increasing")).as_string(), "no");
  EXPECT_THROW(mon->evalDP("Unknown", Value()), MonitorError);
}

TEST_F(MonitorTest, EvalDPNumericExtraIndexesTableValue) {
  auto mon = std::make_shared<BasicMonitor>("LoadAvg", engine_);
  mon->setvalue(Value(Table::make_array({Value(1.5), Value(2.5), Value(3.5)})));
  EXPECT_DOUBLE_EQ(mon->evalDP("LoadAvg", Value(1.0)).as_number(), 1.5);
  EXPECT_DOUBLE_EQ(mon->evalDP("LoadAvg", Value(3.0)).as_number(), 3.5);
}

TEST_F(MonitorTest, MonitorActsAsTraderDynamicProperty) {
  // End-to-end: monitor registered as servant answers evalDP via the ORB —
  // exactly what the trader does during lookup.
  auto mon = std::make_shared<BasicMonitor>("LoadAvg", engine_);
  mon->setvalue(Value(30.0));
  const ObjectRef ref = orb_->register_servant(mon);
  const Value v = orb_->invoke(ref, "evalDP", {Value("LoadAvg"), Value()});
  EXPECT_DOUBLE_EQ(v.as_number(), 30.0);
}

// ---- EventMonitor (Fig. 2) -------------------------------------------------

class EventTest : public MonitorTest {
 protected:
  EventTest() : mon_(std::make_shared<EventMonitor>("LoadAvg", engine_, orb_)) {
    observer_servant_ = std::make_shared<CallbackObserver>(
        [this](const std::string& evid) { events_.push_back(evid); });
    observer_ref_ = orb_->register_servant(observer_servant_);
  }

  std::shared_ptr<EventMonitor> mon_;
  std::shared_ptr<CallbackObserver> observer_servant_;
  ObjectRef observer_ref_;
  std::vector<std::string> events_;
};

TEST_F(EventTest, NotifiesWhenPredicateTrue) {
  mon_->attachEventObserver(observer_ref_, "HighLoad",
                            "function(observer, value, monitor) return value > 50 end");
  mon_->setvalue(Value(10.0));
  EXPECT_TRUE(events_.empty());
  mon_->setvalue(Value(80.0));
  ASSERT_EQ(events_.size(), 1u);
  EXPECT_EQ(events_[0], "HighLoad");
  EXPECT_EQ(mon_->notifications_sent(), 1u);
}

TEST_F(EventTest, PredicateSeesMonitorAspects) {
  // The paper's Fig. 4 predicate: value[1] > 50 and increasing == 'yes'.
  mon_->defineAspect("increasing", R"(function(self, currval, monitor)
    if currval[1] > currval[2] then return "yes" else return "no" end
  end)");
  mon_->attachEventObserver(observer_ref_, "LoadIncrease", R"(function(observer, value, monitor)
    local incr
    incr = monitor:getAspectValue("increasing")
    return value[1] > 50 and incr == "yes"
  end)");
  mon_->setvalue(Value(Table::make_array({Value(60.0), Value(70.0)})));  // not increasing
  EXPECT_TRUE(events_.empty());
  mon_->setvalue(Value(Table::make_array({Value(80.0), Value(70.0)})));  // increasing + high
  ASSERT_EQ(events_.size(), 1u);
  EXPECT_EQ(events_[0], "LoadIncrease");
  mon_->setvalue(Value(Table::make_array({Value(40.0), Value(70.0)})));  // low again
  EXPECT_EQ(events_.size(), 1u);
}

TEST_F(EventTest, MultipleObserversIndependent) {
  std::vector<std::string> other_events;
  auto other = std::make_shared<CallbackObserver>(
      [&](const std::string& evid) { other_events.push_back(evid); });
  const ObjectRef other_ref = orb_->register_servant(other);
  mon_->attachEventObserver(observer_ref_, "High",
                            "function(o, v, m) return v > 50 end");
  mon_->attachEventObserver(other_ref, "Low", "function(o, v, m) return v < 10 end");
  EXPECT_EQ(mon_->observer_count(), 2u);
  mon_->setvalue(Value(99.0));
  mon_->setvalue(Value(5.0));
  EXPECT_EQ(events_, (std::vector<std::string>{"High"}));
  EXPECT_EQ(other_events, (std::vector<std::string>{"Low"}));
}

TEST_F(EventTest, DetachStopsNotifications) {
  const std::string id = mon_->attachEventObserver(
      observer_ref_, "High", "function(o, v, m) return v > 50 end");
  mon_->setvalue(Value(99.0));
  EXPECT_EQ(events_.size(), 1u);
  mon_->detachEventObserver(id);
  mon_->setvalue(Value(99.0));
  EXPECT_EQ(events_.size(), 1u);
  EXPECT_THROW(mon_->detachEventObserver(id), MonitorError);
}

TEST_F(EventTest, TimerDrivenDetection) {
  engine_->eval("load = 10");
  mon_->set_update_code("function() return load end");
  mon_->attachEventObserver(observer_ref_, "High",
                            "function(o, v, m) return v > 50 end");
  mon_->start(timers_, 60.0);
  timers_->run_for(120.0);
  EXPECT_TRUE(events_.empty());
  engine_->eval("load = 90");
  timers_->run_for(60.0);
  ASSERT_EQ(events_.size(), 1u);
}

TEST_F(EventTest, DeadObserverDoesNotBreakOthers) {
  // First observer's host disappears; second must still be notified
  // (oneways are best-effort).
  ObjectRef dead{"inproc://vanished-host", "obs", "EventObserver"};
  mon_->attachEventObserver(dead, "High", "function(o, v, m) return v > 50 end");
  mon_->attachEventObserver(observer_ref_, "High",
                            "function(o, v, m) return v > 50 end");
  mon_->setvalue(Value(99.0));
  EXPECT_EQ(events_.size(), 1u);
}

TEST_F(EventTest, FailingPredicateSkipsNotification) {
  mon_->attachEventObserver(observer_ref_, "Broken",
                            "function(o, v, m) return v.no_such_field.deeper end");
  mon_->attachEventObserver(observer_ref_, "Good",
                            "function(o, v, m) return v > 1 end");
  mon_->setvalue(Value(5.0));
  EXPECT_EQ(events_, (std::vector<std::string>{"Good"}));
}

TEST_F(EventTest, RemoteAttachViaOrbShipsCode) {
  // Remote evaluation (paper SIII): a client on another ORB ships predicate
  // source to the monitor and receives notifications.
  const ObjectRef mon_ref = orb_->register_servant(mon_);
  auto client_orb = Orb::create();
  std::vector<std::string> client_events;
  auto client_observer = std::make_shared<CallbackObserver>(
      [&](const std::string& evid) { client_events.push_back(evid); });
  const ObjectRef client_obs_ref = client_orb->register_servant(client_observer);

  const Value id = client_orb->invoke(
      mon_ref, "attachEventObserver",
      {Value(client_obs_ref), Value("RemoteHigh"),
       Value("function(o, v, m) return v > 42 end")});
  EXPECT_TRUE(id.is_string());
  mon_->setvalue(Value(100.0));
  ASSERT_EQ(client_events.size(), 1u);
  EXPECT_EQ(client_events[0], "RemoteHigh");
}

TEST_F(EventTest, BadPredicateCodeRejectedAtAttach) {
  EXPECT_THROW(mon_->attachEventObserver(observer_ref_, "x", "function(broken"), Error);
}

TEST_F(EventTest, LevelTriggeredNotifiesEveryUpdateWhileTrue) {
  mon_->attachEventObserver(observer_ref_, "High",
                            "function(o, v, m) return v > 50 end");
  mon_->setvalue(Value(60.0));
  mon_->setvalue(Value(70.0));
  mon_->setvalue(Value(80.0));
  EXPECT_EQ(events_.size(), 3u) << "level semantics: one notification per update";
}

TEST_F(EventTest, EdgeTriggeredNotifiesOnTransitionOnly) {
  mon_->attachEventObserver(observer_ref_, "High",
                            "function(o, v, m) return v > 50 end",
                            /*edge_triggered=*/true);
  mon_->setvalue(Value(60.0));
  mon_->setvalue(Value(70.0));
  mon_->setvalue(Value(80.0));
  EXPECT_EQ(events_.size(), 1u) << "edge semantics: only the false->true transition";
  mon_->setvalue(Value(10.0));  // falls below: re-arms
  mon_->setvalue(Value(90.0));  // second episode
  EXPECT_EQ(events_.size(), 2u);
}

TEST_F(EventTest, EdgeTriggerViaOrbDispatch) {
  const ObjectRef mon_ref = orb_->register_servant(mon_);
  orb_->invoke(mon_ref, "attachEventObserver",
               {Value(observer_ref_), Value("High"),
                Value("function(o, v, m) return v > 50 end"), Value(true)});
  mon_->setvalue(Value(60.0));
  mon_->setvalue(Value(61.0));
  EXPECT_EQ(events_.size(), 1u);
}

TEST_F(EventTest, MixedTriggerModesCoexist) {
  std::vector<std::string> edge_events;
  auto edge_observer = std::make_shared<CallbackObserver>(
      [&](const std::string& evid) { edge_events.push_back(evid); });
  const ObjectRef edge_ref = orb_->register_servant(edge_observer);
  mon_->attachEventObserver(observer_ref_, "High",
                            "function(o, v, m) return v > 50 end");
  mon_->attachEventObserver(edge_ref, "High", "function(o, v, m) return v > 50 end",
                            /*edge_triggered=*/true);
  mon_->setvalue(Value(60.0));
  mon_->setvalue(Value(70.0));
  EXPECT_EQ(events_.size(), 2u);
  EXPECT_EQ(edge_events.size(), 1u);
}

// ---- MonitorClient ----------------------------------------------------------

TEST_F(MonitorTest, MonitorClientFullSurface) {
  auto mon = std::make_shared<EventMonitor>("LoadAvg", engine_, orb_);
  const ObjectRef ref = orb_->register_servant(mon);
  auto client_orb = Orb::create();
  MonitorClient client(client_orb, ref);

  client.setvalue(Value(5.0));
  EXPECT_DOUBLE_EQ(client.getvalue().as_number(), 5.0);
  client.defineAspect("neg", "function(self, v) return -v end");
  client.update();
  client.setvalue(Value(9.0));
  EXPECT_DOUBLE_EQ(client.getAspectValue("neg").as_number(), -9.0);
  EXPECT_EQ(client.definedAspects(), (std::vector<std::string>{"neg"}));

  std::vector<std::string> events;
  auto observer = std::make_shared<CallbackObserver>(
      [&](const std::string& evid) { events.push_back(evid); });
  const ObjectRef obs_ref = client_orb->register_servant(observer);
  const std::string id =
      client.attachEventObserver(obs_ref, "Neg", "function(o, v, m) return v < 0 end");
  client.setvalue(Value(-1.0));
  EXPECT_EQ(events.size(), 1u);
  client.detachEventObserver(id);
  client.setvalue(Value(-2.0));
  EXPECT_EQ(events.size(), 1u);
}

TEST_F(MonitorTest, EmptyMonitorClientThrows) {
  MonitorClient client;
  EXPECT_FALSE(client.valid());
  EXPECT_THROW(client.getvalue(), MonitorError);
}

TEST_F(MonitorTest, RemoteWrapperForScriptCode) {
  auto mon = std::make_shared<BasicMonitor>("prop", engine_);
  mon->setvalue(Value(11.0));
  const ObjectRef ref = orb_->register_servant(mon);
  auto client_orb = Orb::create();
  ScriptEngine client_engine;
  client_engine.set_global("mon", make_remote_monitor_wrapper(client_orb, ref));
  EXPECT_DOUBLE_EQ(client_engine.eval1("return mon:getvalue()").as_number(), 11.0);
  client_engine.eval("mon:setvalue(22)");
  EXPECT_DOUBLE_EQ(mon->getvalue().as_number(), 22.0);
  client_engine.eval("mon:defineAspect('twice', 'function(self, v) return v * 2 end')");
  mon->setvalue(Value(10.0));
  EXPECT_DOUBLE_EQ(client_engine.eval1("return mon:getAspectValue('twice')").as_number(),
                   20.0);
}

// ---- script bindings (EventMonitor:new, paper Fig. 3 machinery) ----------

TEST_F(MonitorTest, EventMonitorNewFromScript) {
  install_monitor_bindings(*engine_, orb_, timers_);
  engine_->eval("load = 5");
  const Value wrapper = engine_->eval1(R"(
    lmon = EventMonitor:new("LoadAvg", function() return load end, 60)
    return lmon
  )");
  ASSERT_TRUE(wrapper.is_table());
  EXPECT_DOUBLE_EQ(engine_->eval1("return lmon:getvalue()").as_number(), 5.0);
  engine_->eval("load = 42");
  timers_->run_for(60.0);
  EXPECT_DOUBLE_EQ(engine_->eval1("return lmon:getvalue()").as_number(), 42.0);
  EXPECT_TRUE(wrapper.as_table()->get(Value("ref")).is_string());
}

TEST_F(MonitorTest, ScriptCreatedMonitorIsRemotelyReachable) {
  install_monitor_bindings(*engine_, orb_, timers_);
  engine_->eval(R"(m = BasicMonitor:new("Temp"))");
  engine_->eval("m:setvalue(36.6)");
  const std::string ref_str = engine_->eval1("return m.ref").as_string();
  auto client_orb = Orb::create();
  const Value v = client_orb->invoke(ObjectRef::parse(ref_str), "getvalue");
  EXPECT_DOUBLE_EQ(v.as_number(), 36.6);
}

}  // namespace
}  // namespace adapt::monitor
