// Resilience of the client-side RPC path: stale pooled connections are
// transparently redialed, idempotent calls are retried with backoff under a
// deadline, listener fd/thread bookkeeping survives churn, and every
// failure is visible in OrbStats (C++ and Luma).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <filesystem>
#include <thread>

#include "monitor/bindings.h"
#include "orb/orb.h"
#include "orb/script_bindings.h"
#include "script/engine.h"

namespace adapt::orb {
namespace {

size_t open_fd_count() {
  size_t n = 0;
  for (const auto& entry : std::filesystem::directory_iterator("/proc/self/fd")) {
    (void)entry;
    ++n;
  }
  return n;
}

double elapsed_seconds(const std::chrono::steady_clock::time_point& start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
}

/// Wire-speaking echo handler for raw TcpListener tests.
std::optional<Bytes> ok_handler(const Bytes& payload) {
  const RequestMessage req = decode_request(payload);
  ReplyMessage rep;
  rep.request_id = req.request_id;
  rep.status = ReplyStatus::Ok;
  rep.result = Value(true);
  return encode_reply(rep);
}

// ---- acceptance: restart a TCP peer between two invokes -------------------

TEST(OrbResilienceTest, StaleConnectionRedialAfterServerRestart) {
  auto make_servant = [](double version) {
    auto servant = FunctionServant::make("S");
    servant->on("v", [version](const ValueList&) { return Value(version); });
    return servant;
  };

  OrbConfig server_cfg;
  server_cfg.name = "redial-server-a";
  server_cfg.listen_tcp = true;
  auto server = Orb::create(server_cfg);
  const ObjectRef ref = server->register_servant(make_servant(1.0), "the-object");
  const uint16_t port = TcpAddress::parse(server->endpoint()).port;

  auto client = Orb::create({.name = "redial-client", .request_timeout = 5.0});
  EXPECT_DOUBLE_EQ(client->invoke(ref, "v", {}).as_number(), 1.0);
  EXPECT_EQ(client->stats().redials, 0u);

  // Kill the peer and bring a new incarnation up on the same port. The
  // client's pooled connection is now stale.
  server->shutdown();
  OrbConfig revived_cfg;
  revived_cfg.name = "redial-server-b";
  revived_cfg.listen_tcp = true;
  revived_cfg.listen_port = port;
  auto revived = Orb::create(revived_cfg);
  revived->register_servant(make_servant(2.0), "the-object");

  // Same proxy ref, same client ORB: the call must succeed via transparent
  // redial — "v" is not idempotent, so the stale socket must be caught at
  // checkout (peek sees the dead peer's FIN), before the request is sent.
  EXPECT_DOUBLE_EQ(client->invoke(ref, "v", {}).as_number(), 2.0);
  EXPECT_GE(client->stats().redials, 1u);

  // The same counter is observable from Luma through the orb binding.
  script::ScriptEngine engine;
  install_orb_bindings(engine, client);
  EXPECT_GE(engine.eval1("return orb.stats().redials").as_number(), 1.0);
  EXPECT_GT(engine.eval1("return orb.stats().requests").as_number(), 0.0);

  // And remotely through the _stats builtin of the revived server.
  const Value remote = client->invoke(ref, "_stats", {});
  ASSERT_TRUE(remote.is_table());
  EXPECT_GE(remote.as_table()->get(Value("requests_served")).as_number(), 1.0);
}

// Satellite regression: the raw pool redials across a listener restart on
// the same port between two call()s.
TEST(OrbResilienceTest, PoolCallSurvivesListenerRestartOnSamePort) {
  auto listener = std::make_unique<TcpListener>("127.0.0.1", 0, ok_handler);
  const uint16_t port = listener->port();
  const std::string endpoint = listener->endpoint();

  TcpConnectionPool pool(2.0);
  const Bytes request = encode_request(RequestMessage{1, false, "obj", "_ping", {}});
  EXPECT_NO_THROW(pool.call(endpoint, request));
  EXPECT_EQ(pool.idle_count(endpoint), 1u);

  listener.reset();  // peer gone; pooled connection is now stale
  listener = std::make_unique<TcpListener>("127.0.0.1", port, ok_handler);

  // Before the redial logic this surfaced as "connection closed before reply".
  EXPECT_NO_THROW(pool.call(endpoint, request));
}

// The post-write failure window: the peer read the whole request and died
// before replying. It may have executed the request, so only idempotent
// calls may be re-sent on a fresh connection.
TEST(OrbResilienceTest, PostWriteEofRedialsOnlyIdempotentCalls) {
  std::atomic<bool> kill_next{false};
  TcpListener listener("127.0.0.1", 0, [&](const Bytes& payload) -> std::optional<Bytes> {
    if (kill_next.exchange(false)) throw std::runtime_error("die after read");
    return ok_handler(payload);
  });
  const std::string endpoint = listener.endpoint();
  const Bytes request = encode_request(RequestMessage{1, false, "obj", "op", {}});

  auto stats = std::make_shared<OrbStatsCounters>();
  TcpConnectionPool pool(PoolConfig{.timeout = 2.0}, stats);

  // Warm the pool so the next call runs on a reused connection, then have
  // the peer consume the request and close without replying. A
  // non-idempotent call must surface the failure, not re-execute.
  pool.call(endpoint, request);
  ASSERT_EQ(pool.idle_count(endpoint), 1u);
  kill_next = true;
  EXPECT_THROW(pool.call(endpoint, request, 0.0, /*idempotent=*/false), TransportError);
  EXPECT_EQ(stats->snapshot().redials, 0u);

  // The same failure on an idempotent call redials transparently.
  pool.call(endpoint, request);
  ASSERT_EQ(pool.idle_count(endpoint), 1u);
  kill_next = true;
  EXPECT_NO_THROW(pool.call(endpoint, request, 0.0, /*idempotent=*/true));
  EXPECT_EQ(stats->snapshot().redials, 1u);
}

// ---- retry policy ---------------------------------------------------------

TEST(OrbResilienceTest, IdempotentCallRetriesThroughInjectedFaults) {
  // The first two requests hit a handler that dies with a std::exception
  // (not adapt::Error): the listener must log-and-close, not terminate, and
  // the client's retry policy must carry the call to the third attempt.
  std::atomic<int> faults_left{2};
  TcpListener listener("127.0.0.1", 0, [&](const Bytes& payload) -> std::optional<Bytes> {
    if (faults_left.fetch_sub(1) > 0) throw std::runtime_error("injected fault");
    return ok_handler(payload);
  });

  auto client = Orb::create({.name = "retry-client"});
  ObjectRef ref{listener.endpoint(), "obj", ""};
  InvokeOptions options;
  options.idempotent = true;
  options.retry = RetryPolicy{.max_attempts = 5, .initial_backoff = 0.005,
                              .backoff_multiplier = 2.0, .max_backoff = 0.05, .jitter = 0.2};
  EXPECT_TRUE(client->invoke(ref, "_ping", {}, options).truthy());
  const OrbStats stats = client->stats();
  EXPECT_GE(stats.retries, 2u);
  EXPECT_GE(stats.transport_errors, 2u);
  EXPECT_GE(stats.replies, 1u);
}

TEST(OrbResilienceTest, RetryCountsAreExactAgainstDeadEndpoint) {
  auto client = Orb::create({.name = "retry-dead-client"});
  // Find a port that is almost certainly closed: bind-then-destroy.
  std::string endpoint;
  {
    TcpListener probe("127.0.0.1", 0, ok_handler);
    endpoint = probe.endpoint();
  }
  ObjectRef ref{endpoint, "obj", ""};
  InvokeOptions options;
  options.idempotent = true;
  options.retry = RetryPolicy{.max_attempts = 3, .initial_backoff = 0.005,
                              .backoff_multiplier = 2.0, .max_backoff = 0.02, .jitter = 0.0};
  EXPECT_THROW(client->invoke(ref, "_ping", {}, options), TransportError);
  const OrbStats stats = client->stats();
  EXPECT_EQ(stats.retries, 2u);            // attempts 2 and 3
  EXPECT_EQ(stats.transport_errors, 3u);   // every attempt failed
  EXPECT_EQ(stats.replies, 0u);

  // Non-idempotent operations never retry.
  EXPECT_THROW(client->invoke(ref, "mutate", {}), TransportError);
  EXPECT_EQ(client->stats().retries, 2u);
}

// ---- deadlines ------------------------------------------------------------

TEST(OrbResilienceTest, PerCallDeadlineBeatsOrbDefault) {
  OrbConfig server_cfg;
  server_cfg.name = "deadline-server";
  server_cfg.listen_tcp = true;
  auto server = Orb::create(server_cfg);
  auto servant = FunctionServant::make("Slow");
  servant->on("sleep", [](const ValueList&) {
    std::this_thread::sleep_for(std::chrono::milliseconds(700));
    return Value("done");
  });
  const ObjectRef ref = server->register_servant(servant);

  auto client = Orb::create({.name = "deadline-client", .request_timeout = 10.0});
  InvokeOptions options;
  options.deadline = 0.15;
  const auto start = std::chrono::steady_clock::now();
  EXPECT_THROW(client->invoke(ref, "sleep", {}, options), TimeoutError);
  // Must honor the 150ms per-call deadline, not the 10s ORB default.
  EXPECT_LT(elapsed_seconds(start), 5.0);
  EXPECT_GE(client->stats().timeouts, 1u);

  // The default budget still applies when no override is given.
  EXPECT_EQ(client->invoke(ref, "sleep", {}).as_string(), "done");
}

// ---- listener lifecycle ---------------------------------------------------

TEST(OrbResilienceTest, ListenerChurnLeaksNoFds) {
  TcpListener listener("127.0.0.1", 0, ok_handler);
  const Bytes request = encode_request(RequestMessage{1, false, "obj", "_ping", {}});

  // Warm up lazily-created fds (epoll, /etc/hosts caches, ...) first.
  {
    TcpConnectionPool pool(2.0);
    pool.call(listener.endpoint(), request);
  }
  for (int i = 0; i < 10 && listener.live_connections() > 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  const size_t before = open_fd_count();

  constexpr int kCycles = 40;
  for (int i = 0; i < kCycles; ++i) {
    TcpConnectionPool pool(2.0);
    pool.call(listener.endpoint(), request);
  }  // pool destruction closes the client side; the server side sees EOF

  // Wait for the listener to notice every disconnect and close its side.
  for (int i = 0; i < 200 && listener.live_connections() > 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_EQ(listener.live_connections(), 0u);
  const size_t after = open_fd_count();
  EXPECT_LE(after, before + 4) << "fd leak across " << kCycles << " connection cycles";
}

// ---- pool caps & reaping --------------------------------------------------

TEST(OrbResilienceTest, PoolEnforcesPerEndpointIdleCap) {
  // A slow handler keeps several connections in flight at once.
  TcpListener listener("127.0.0.1", 0, [](const Bytes& payload) -> std::optional<Bytes> {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    return ok_handler(payload);
  });

  PoolConfig config;
  config.timeout = 5.0;
  config.max_idle_per_endpoint = 2;
  auto stats = std::make_shared<OrbStatsCounters>();
  TcpConnectionPool pool(std::move(config), stats);

  const Bytes request = encode_request(RequestMessage{1, false, "obj", "_ping", {}});
  std::vector<std::thread> threads;
  for (int i = 0; i < 5; ++i) {
    threads.emplace_back([&] { pool.call(listener.endpoint(), request); });
  }
  for (auto& t : threads) t.join();

  EXPECT_GE(pool.idle_count(listener.endpoint()), 1u);
  EXPECT_LE(pool.idle_count(listener.endpoint()), 2u);
  EXPECT_GE(stats->snapshot().connections_opened, 3u);
}

TEST(OrbResilienceTest, PoolReapsAgedIdleConnections) {
  TcpListener listener("127.0.0.1", 0, ok_handler);

  double fake_now = 0.0;
  PoolConfig config;
  config.timeout = 2.0;
  config.max_idle_age = 10.0;
  config.now = [&fake_now] { return fake_now; };
  auto stats = std::make_shared<OrbStatsCounters>();
  TcpConnectionPool pool(std::move(config), stats);

  const Bytes request = encode_request(RequestMessage{1, false, "obj", "_ping", {}});
  pool.call(listener.endpoint(), request);
  ASSERT_EQ(pool.idle_count(listener.endpoint()), 1u);

  // Young connections survive and get reused...
  fake_now = 5.0;
  pool.call(listener.endpoint(), request);
  EXPECT_EQ(stats->snapshot().connections_reused, 1u);
  EXPECT_EQ(pool.idle_count(listener.endpoint()), 1u);

  // ...old ones are reaped instead of being handed out.
  fake_now = 100.0;
  EXPECT_EQ(pool.reap_idle(), 1u);
  EXPECT_EQ(pool.idle_count(listener.endpoint()), 0u);
}

TEST(OrbResilienceTest, StatsCountBytesAndConnections) {
  OrbConfig server_cfg;
  server_cfg.name = "stats-server";
  server_cfg.listen_tcp = true;
  auto server = Orb::create(server_cfg);
  auto servant = FunctionServant::make("Echo");
  servant->on("echo", [](const ValueList& args) { return args.at(0); });
  const ObjectRef ref = server->register_servant(servant);

  auto client = Orb::create({.name = "stats-client"});
  for (int i = 0; i < 3; ++i) {
    client->invoke(ref, "echo", {Value("payload-" + std::to_string(i))});
  }
  const OrbStats stats = client->stats();
  EXPECT_EQ(stats.requests, 3u);
  EXPECT_EQ(stats.replies, 3u);
  EXPECT_GT(stats.bytes_sent, 0u);
  EXPECT_GT(stats.bytes_received, 0u);
  EXPECT_EQ(stats.connections_opened, 1u);
  EXPECT_EQ(stats.connections_reused, 2u);
  EXPECT_EQ(stats.redials, 0u);
  EXPECT_EQ(server->stats().requests_served, 3u);
}

TEST(OrbResilienceTest, MonitorServantDoesNotKeepOrbAlive) {
  // An EventMonitor is a servant *of* the ORB it notifies through, and it
  // shares a script engine whose monitor bindings reference that same ORB.
  // Either link held strongly is a cycle: the ORB (and its listener
  // threads) would outlive every external reference.
  std::weak_ptr<Orb> weak;
  {
    auto engine = std::make_shared<script::ScriptEngine>();
    OrbConfig cfg;
    cfg.listen_tcp = true;
    auto orb = Orb::create(cfg);
    weak = orb;
    monitor::install_monitor_bindings(*engine, orb, nullptr);
    ObjectRef ref;
    auto mon = monitor::create_event_monitor("LoadAvg", engine, orb, nullptr,
                                             Value(), 0.0, &ref);
    ASSERT_TRUE(orb->find_servant(ref.object_id));
  }
  EXPECT_TRUE(weak.expired());
}

}  // namespace
}  // namespace adapt::orb
