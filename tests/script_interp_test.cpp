// Interpreter semantics tests: expressions, statements, closures, scoping,
// control flow, multiple returns. Exercised through the ScriptEngine facade.
#include <gtest/gtest.h>

#include "script/engine.h"

namespace adapt::script {
namespace {

class InterpTest : public ::testing::Test {
 protected:
  Value run(const std::string& code) { return eng_.eval1(code); }
  double num(const std::string& code) { return run(code).as_number(); }
  std::string str(const std::string& code) { return run(code).as_string(); }
  ScriptEngine eng_;
};

// ---- literals & operators ------------------------------------------------

TEST_F(InterpTest, Literals) {
  EXPECT_TRUE(run("return nil").is_nil());
  EXPECT_TRUE(run("return true").as_bool());
  EXPECT_FALSE(run("return false").as_bool());
  EXPECT_DOUBLE_EQ(num("return 42"), 42);
  EXPECT_EQ(str("return 'hi'"), "hi");
}

TEST_F(InterpTest, Arithmetic) {
  EXPECT_DOUBLE_EQ(num("return 2+3*4"), 14);
  EXPECT_DOUBLE_EQ(num("return (2+3)*4"), 20);
  EXPECT_DOUBLE_EQ(num("return 10/4"), 2.5);
  EXPECT_DOUBLE_EQ(num("return 7%3"), 1);
  EXPECT_DOUBLE_EQ(num("return -7%3"), 2) << "Lua mod takes divisor sign";
  EXPECT_DOUBLE_EQ(num("return 2^10"), 1024);
  EXPECT_DOUBLE_EQ(num("return 2^3^2"), 512) << "^ is right-associative";
  EXPECT_DOUBLE_EQ(num("return -2^2"), -4) << "unary minus binds looser than ^";
}

TEST_F(InterpTest, StringCoercionInArithmetic) {
  EXPECT_DOUBLE_EQ(num("return '10' + 5"), 15);
  EXPECT_THROW(run("return 'abc' + 1"), ScriptError);
}

TEST_F(InterpTest, Concat) {
  EXPECT_EQ(str("return 'a' .. 'b' .. 'c'"), "abc");
  EXPECT_EQ(str("return 'n=' .. 5"), "n=5");
  EXPECT_THROW(run("return 'x' .. nil"), ScriptError);
}

TEST_F(InterpTest, Comparison) {
  EXPECT_TRUE(run("return 1 < 2").as_bool());
  EXPECT_TRUE(run("return 'a' < 'b'").as_bool());
  EXPECT_TRUE(run("return 2 >= 2").as_bool());
  EXPECT_TRUE(run("return 1 ~= 2").as_bool());
  EXPECT_TRUE(run("return 'x' == 'x'").as_bool());
  EXPECT_FALSE(run("return 1 == '1'").as_bool()) << "no coercion in equality";
  EXPECT_THROW(run("return 1 < 'a'"), ScriptError);
}

TEST_F(InterpTest, LogicalOperatorsYieldOperands) {
  EXPECT_DOUBLE_EQ(num("return false or 5"), 5);
  EXPECT_DOUBLE_EQ(num("return nil or 7"), 7);
  EXPECT_DOUBLE_EQ(num("return 3 and 4"), 4);
  EXPECT_TRUE(run("return nil and error('not reached')").is_nil());
  EXPECT_FALSE(run("return not 1").as_bool());
  EXPECT_TRUE(run("return not nil").as_bool());
}

TEST_F(InterpTest, ShortCircuitSkipsSideEffects) {
  eng_.eval("called = false; function f() called = true; return true end");
  run("return false and f()");
  EXPECT_FALSE(eng_.get_global("called").as_bool());
  run("return true or f()");
  EXPECT_FALSE(eng_.get_global("called").as_bool());
}

TEST_F(InterpTest, LengthOperator) {
  EXPECT_DOUBLE_EQ(num("return #'hello'"), 5);
  EXPECT_DOUBLE_EQ(num("return #{10,20,30}"), 3);
}

// ---- variables & scoping --------------------------------------------------

TEST_F(InterpTest, GlobalAssignment) {
  eng_.eval("x = 10");
  EXPECT_DOUBLE_EQ(eng_.get_global("x").as_number(), 10);
}

TEST_F(InterpTest, UndefinedGlobalIsNil) {
  EXPECT_TRUE(run("return no_such_var").is_nil());
}

TEST_F(InterpTest, LocalsShadowGlobals) {
  eng_.eval("x = 1");
  EXPECT_DOUBLE_EQ(num("local x = 2; return x"), 2);
  EXPECT_DOUBLE_EQ(eng_.get_global("x").as_number(), 1);
}

TEST_F(InterpTest, BlockScoping) {
  const Value v = run(R"(
    local a = 1
    do
      local a = 2
    end
    return a
  )");
  EXPECT_DOUBLE_EQ(v.as_number(), 1);
}

TEST_F(InterpTest, MultipleAssignment) {
  eng_.eval("a, b, c = 1, 2");
  EXPECT_DOUBLE_EQ(eng_.get_global("a").as_number(), 1);
  EXPECT_DOUBLE_EQ(eng_.get_global("b").as_number(), 2);
  EXPECT_TRUE(eng_.get_global("c").is_nil());
}

TEST_F(InterpTest, SwapViaMultipleAssignment) {
  eng_.eval("a, b = 1, 2; a, b = b, a");
  EXPECT_DOUBLE_EQ(eng_.get_global("a").as_number(), 2);
  EXPECT_DOUBLE_EQ(eng_.get_global("b").as_number(), 1);
}

// ---- control flow -----------------------------------------------------------

TEST_F(InterpTest, IfElseifElse) {
  const std::string code = R"(
    function grade(n)
      if n >= 90 then return 'A'
      elseif n >= 80 then return 'B'
      elseif n >= 70 then return 'C'
      else return 'F' end
    end
    return grade(95), grade(85), grade(75), grade(10)
  )";
  ValueList vs = eng_.eval(code);
  ASSERT_EQ(vs.size(), 4u);
  EXPECT_EQ(vs[0].as_string(), "A");
  EXPECT_EQ(vs[1].as_string(), "B");
  EXPECT_EQ(vs[2].as_string(), "C");
  EXPECT_EQ(vs[3].as_string(), "F");
}

TEST_F(InterpTest, WhileLoop) {
  EXPECT_DOUBLE_EQ(num("local s=0 local i=1 while i<=10 do s=s+i i=i+1 end return s"), 55);
}

TEST_F(InterpTest, WhileBreak) {
  EXPECT_DOUBLE_EQ(num("local i=0 while true do i=i+1 if i==5 then break end end return i"), 5);
}

TEST_F(InterpTest, RepeatUntil) {
  EXPECT_DOUBLE_EQ(num("local i=0 repeat i=i+1 until i>=3 return i"), 3);
}

TEST_F(InterpTest, RepeatConditionSeesBodyLocals) {
  EXPECT_DOUBLE_EQ(num("local n=0 repeat local done=true n=n+1 until done return n"), 1);
}

TEST_F(InterpTest, NumericFor) {
  EXPECT_DOUBLE_EQ(num("local s=0 for i=1,5 do s=s+i end return s"), 15);
  EXPECT_DOUBLE_EQ(num("local s=0 for i=10,1,-2 do s=s+i end return s"), 30);
  EXPECT_DOUBLE_EQ(num("local s=0 for i=5,1 do s=s+i end return s"), 0) << "empty range";
}

TEST_F(InterpTest, NumericForZeroStepThrows) {
  EXPECT_THROW(run("for i=1,10,0 do end"), ScriptError);
}

TEST_F(InterpTest, ForLoopVariableIsLocal) {
  eng_.eval("i = 99; for i=1,3 do end");
  EXPECT_DOUBLE_EQ(eng_.get_global("i").as_number(), 99);
}

TEST_F(InterpTest, GenericForWithPairs) {
  const std::string code = R"(
    local t = {x=1, y=2, z=3}
    local sum = 0
    for k, v in pairs(t) do sum = sum + v end
    return sum
  )";
  EXPECT_DOUBLE_EQ(num(code), 6);
}

TEST_F(InterpTest, GenericForWithIpairs) {
  const std::string code = R"(
    local t = {5, 6, 7}
    local keys, sum = 0, 0
    for i, v in ipairs(t) do keys = keys + i sum = sum + v end
    return keys + sum
  )";
  EXPECT_DOUBLE_EQ(num(code), 24);
}

TEST_F(InterpTest, GenericForBreak) {
  const std::string code = R"(
    local n = 0
    for i, v in ipairs({1,2,3,4,5}) do
      n = n + 1
      if i == 2 then break end
    end
    return n
  )";
  EXPECT_DOUBLE_EQ(num(code), 2);
}

// ---- functions ---------------------------------------------------------------

TEST_F(InterpTest, FunctionDefinitionAndCall) {
  EXPECT_DOUBLE_EQ(num("function add(a, b) return a + b end return add(2, 3)"), 5);
}

TEST_F(InterpTest, LocalFunctionRecursion) {
  EXPECT_DOUBLE_EQ(
      num("local function fact(n) if n <= 1 then return 1 end return n * fact(n-1) end "
          "return fact(6)"),
      720);
}

TEST_F(InterpTest, MissingArgsAreNil) {
  EXPECT_TRUE(run("function f(a, b) return b end return f(1)").is_nil());
}

TEST_F(InterpTest, ExtraArgsIgnored) {
  EXPECT_DOUBLE_EQ(num("function f(a) return a end return f(1, 2, 3)"), 1);
}

TEST_F(InterpTest, MultipleReturnValues) {
  ValueList vs = eng_.eval("function two() return 1, 2 end return two()");
  ASSERT_EQ(vs.size(), 2u);
  EXPECT_DOUBLE_EQ(vs[0].as_number(), 1);
  EXPECT_DOUBLE_EQ(vs[1].as_number(), 2);
}

TEST_F(InterpTest, MultipleReturnsTruncatedMidList) {
  ValueList vs = eng_.eval("function two() return 1, 2 end return two(), 10");
  ASSERT_EQ(vs.size(), 2u);
  EXPECT_DOUBLE_EQ(vs[0].as_number(), 1) << "non-final call truncates to one value";
  EXPECT_DOUBLE_EQ(vs[1].as_number(), 10);
}

TEST_F(InterpTest, MultipleAssignmentFromCall) {
  eng_.eval("function three() return 'a','b','c' end x, y, z = three()");
  EXPECT_EQ(eng_.get_global("x").as_string(), "a");
  EXPECT_EQ(eng_.get_global("y").as_string(), "b");
  EXPECT_EQ(eng_.get_global("z").as_string(), "c");
}

TEST_F(InterpTest, ClosuresCaptureUpvalues) {
  const std::string code = R"(
    function counter()
      local n = 0
      return function() n = n + 1 return n end
    end
    local c = counter()
    c() c()
    return c()
  )";
  EXPECT_DOUBLE_EQ(num(code), 3);
}

TEST_F(InterpTest, ClosuresAreIndependent) {
  const std::string code = R"(
    function counter()
      local n = 0
      return function() n = n + 1 return n end
    end
    local c1 = counter()
    local c2 = counter()
    c1() c1()
    return c1() * 10 + c2()
  )";
  EXPECT_DOUBLE_EQ(num(code), 31);
}

TEST_F(InterpTest, FunctionsAreFirstClass) {
  EXPECT_DOUBLE_EQ(num("local f = function(x) return x * 2 end return f(21)"), 42);
  EXPECT_DOUBLE_EQ(num("local t = {fn = function() return 9 end} return t.fn()"), 9);
}

TEST_F(InterpTest, HigherOrderFunctions) {
  const std::string code = R"(
    function apply(f, x) return f(x) end
    return apply(function(v) return v + 1 end, 41)
  )";
  EXPECT_DOUBLE_EQ(num(code), 42);
}

TEST_F(InterpTest, RunawayRecursionRaisesScriptError) {
  EXPECT_THROW(run("function f() return f() end return f()"), ScriptError);
}

// ---- tables ---------------------------------------------------------------

TEST_F(InterpTest, TableConstructorPositional) {
  ValueList vs = eng_.eval("local t = {10, 20, 30} return t[1], t[3], #t");
  EXPECT_DOUBLE_EQ(vs[0].as_number(), 10);
  EXPECT_DOUBLE_EQ(vs[1].as_number(), 30);
  EXPECT_DOUBLE_EQ(vs[2].as_number(), 3);
}

TEST_F(InterpTest, TableConstructorNamed) {
  EXPECT_DOUBLE_EQ(num("local t = {x = 1, ['y z'] = 2} return t.x + t['y z']"), 3);
}

TEST_F(InterpTest, TableConstructorMixed) {
  ValueList vs = eng_.eval("local t = {1, x='a', 2} return t[1], t[2], t.x");
  EXPECT_DOUBLE_EQ(vs[0].as_number(), 1);
  EXPECT_DOUBLE_EQ(vs[1].as_number(), 2);
  EXPECT_EQ(vs[2].as_string(), "a");
}

TEST_F(InterpTest, LastCallExpandsInConstructor) {
  EXPECT_DOUBLE_EQ(num("function two() return 8, 9 end local t = {two()} return #t"), 2);
}

TEST_F(InterpTest, NestedTables) {
  EXPECT_DOUBLE_EQ(num("local t = {a = {b = {c = 7}}} return t.a.b.c"), 7);
}

TEST_F(InterpTest, TableFieldAssignment) {
  EXPECT_DOUBLE_EQ(num("local t = {} t.x = 1 t['y'] = 2 t[3] = 3 return t.x + t.y + t[3]"), 6);
}

TEST_F(InterpTest, TablesHaveReferenceSemantics) {
  EXPECT_DOUBLE_EQ(num("local a = {n = 1} local b = a b.n = 5 return a.n"), 5);
}

TEST_F(InterpTest, MethodCallSugar) {
  const std::string code = R"(
    local obj = {count = 10}
    function obj:bump(by) self.count = self.count + by return self.count end
    return obj:bump(5)
  )";
  EXPECT_DOUBLE_EQ(num(code), 15);
}

TEST_F(InterpTest, MethodOnNilFieldThrows) {
  EXPECT_THROW(run("local t = {} return t:nothere()"), ScriptError);
}

TEST_F(InterpTest, IndexingNilThrows) {
  EXPECT_THROW(run("local x return x.field"), ScriptError);
  EXPECT_THROW(run("local x x.field = 1"), ScriptError);
}

TEST_F(InterpTest, StringIndexYieldsChar) {
  EXPECT_EQ(str("local s = 'abc' return s[2]"), "b");
}

// ---- errors -------------------------------------------------------------

TEST_F(InterpTest, CallingNonFunctionThrows) {
  EXPECT_THROW(run("local x = 5 return x()"), ScriptError);
}

TEST_F(InterpTest, ErrorsCarryLineNumbers) {
  try {
    run("local a = 1\nlocal b = 2\nreturn a + {}");
    FAIL() << "expected ScriptError";
  } catch (const ScriptError& e) {
    EXPECT_NE(std::string(e.what()).find("line 3"), std::string::npos) << e.what();
  }
}

TEST_F(InterpTest, HostileNestingRejectedNotCrash) {
  const std::string deep(5000, '(');
  EXPECT_THROW(run("return " + deep + "1" + std::string(5000, ')')), ParseError);
  std::string nots = "return ";
  for (int i = 0; i < 5000; ++i) nots += "not ";
  EXPECT_THROW(run(nots + "true"), ParseError);
  std::string blocks;
  for (int i = 0; i < 5000; ++i) blocks += "do ";
  EXPECT_THROW(run(blocks), ParseError);
  EXPECT_NO_THROW(run("return ((((((((((1))))))))))"));
  EXPECT_TRUE(run("return not not not false").as_bool());
}

TEST_F(InterpTest, ParseErrorsPropagate) {
  EXPECT_THROW(run("if without then"), ParseError);
  EXPECT_THROW(run("return 1 +"), ParseError);
  EXPECT_THROW(run("local = 5"), ParseError);
}

TEST_F(InterpTest, StatementMustBeCall) {
  EXPECT_THROW(run("1 + 2"), ParseError);
}

}  // namespace
}  // namespace adapt::script
