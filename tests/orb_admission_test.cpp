// Unit tests for the overload-control building blocks: the CoDel-style
// control law (driven with a fake clock), the AdmissionController gate
// (limits, queueing, shedding, criticality bypass, close), the RetryBudget
// token bucket, and the thread-local dispatch-deadline scope.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "orb/admission.h"

using namespace adapt::orb;
using Decision = AdmissionController::Decision;

namespace {

// ---- CodelLaw (pure control law, fake clock) -------------------------------

TEST(CodelLaw, NoSheddingBelowTarget) {
  CodelLaw law(/*target=*/0.005, /*interval=*/0.1);
  double now = 100.0;
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(law.should_shed(now, 0.004));
    now += 0.01;
  }
  EXPECT_FALSE(law.dropping());
}

TEST(CodelLaw, StandingDelayAboveTargetStartsShedding) {
  CodelLaw law(0.005, 0.1);
  double now = 100.0;
  // Sojourn above target, but the interval has not elapsed yet: no shed.
  EXPECT_FALSE(law.should_shed(now, 0.02));
  EXPECT_FALSE(law.should_shed(now + 0.05, 0.02));
  // A full interval above target: drop state begins, first shed immediate.
  EXPECT_TRUE(law.should_shed(now + 0.11, 0.02));
  EXPECT_TRUE(law.dropping());
}

TEST(CodelLaw, ShedSpacingTightensUnderSustainedOverload) {
  CodelLaw law(0.005, 0.1);
  double now = 100.0;
  law.should_shed(now, 0.02);           // arms first_above
  ASSERT_TRUE(law.should_shed(now + 0.11, 0.02));  // enters drop state
  // Count sheds over a fixed horizon of sustained overload: the
  // interval/sqrt(count) law must shed more than one per interval.
  int sheds = 0;
  for (int i = 0; i < 100; ++i) {
    now += 0.01;
    if (law.should_shed(now, 0.02)) ++sheds;
  }
  EXPECT_GE(sheds, 5) << "sustained standing delay must tighten shed spacing";
}

TEST(CodelLaw, RecoveryBelowTargetStopsShedding) {
  CodelLaw law(0.005, 0.1);
  double now = 100.0;
  law.should_shed(now, 0.02);
  ASSERT_TRUE(law.should_shed(now + 0.11, 0.02));
  EXPECT_FALSE(law.should_shed(now + 0.12, 0.001));  // queue drained
  EXPECT_FALSE(law.dropping());
  // And the next overload episode needs a full interval again.
  EXPECT_FALSE(law.should_shed(now + 0.13, 0.02));
}

// ---- AdmissionController ---------------------------------------------------

AdmissionConfig small_config() {
  AdmissionConfig cfg;
  cfg.max_in_flight = 2;
  cfg.max_queue = 2;
  cfg.codel_target = 0.005;
  cfg.codel_interval = 0.05;
  cfg.max_queue_wait = 0.5;
  return cfg;
}

TEST(AdmissionController, DisabledAdmitsEverything) {
  AdmissionConfig cfg;  // max_in_flight = 0
  AdmissionController ctl(cfg);
  EXPECT_FALSE(ctl.enabled());
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(ctl.acquire(false, 0.0), Decision::Admitted);
  }
  EXPECT_EQ(ctl.in_flight(), 10u);
  for (int i = 0; i < 10; ++i) ctl.release();
  EXPECT_EQ(ctl.in_flight(), 0u);
}

TEST(AdmissionController, AdmitsUpToLimitThenQueues) {
  AdmissionController ctl(small_config());
  EXPECT_EQ(ctl.acquire(false, 0.0), Decision::Admitted);
  EXPECT_EQ(ctl.acquire(false, 0.0), Decision::Admitted);
  EXPECT_EQ(ctl.in_flight(), 2u);

  // Third acquire queues; freeing a slot admits it.
  std::atomic<bool> admitted{false};
  std::thread waiter([&] {
    if (ctl.acquire(false, 0.0) == Decision::Admitted) {
      admitted = true;
      ctl.release();
    }
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  EXPECT_FALSE(admitted.load());
  EXPECT_EQ(ctl.queued(), 1u);
  ctl.release();
  waiter.join();
  EXPECT_TRUE(admitted.load());
  ctl.release();
  EXPECT_EQ(ctl.in_flight(), 0u);
}

TEST(AdmissionController, QueueOverflowShedsImmediately) {
  AdmissionController ctl(small_config());  // 2 slots + 2 queue
  ASSERT_EQ(ctl.acquire(false, 0.0), Decision::Admitted);
  ASSERT_EQ(ctl.acquire(false, 0.0), Decision::Admitted);
  std::vector<std::thread> waiters;
  for (int i = 0; i < 2; ++i) {
    waiters.emplace_back([&] { ctl.acquire(false, 0.0); });
  }
  while (ctl.queued() < 2) std::this_thread::sleep_for(std::chrono::milliseconds(1));
  // Queue full: the next arrival is shed on the spot, without blocking.
  const auto start = std::chrono::steady_clock::now();
  EXPECT_EQ(ctl.acquire(false, 0.0), Decision::Shed);
  const auto elapsed = std::chrono::steady_clock::now() - start;
  EXPECT_LT(std::chrono::duration<double>(elapsed).count(), 0.1);
  EXPECT_GE(ctl.shed(), 1u);
  ctl.close();  // sheds the two queued waiters
  for (auto& t : waiters) t.join();
  EXPECT_GE(ctl.shed(), 3u);
}

TEST(AdmissionController, CriticalBypassesLimitAndQueue) {
  AdmissionController ctl(small_config());
  ASSERT_EQ(ctl.acquire(false, 0.0), Decision::Admitted);
  ASSERT_EQ(ctl.acquire(false, 0.0), Decision::Admitted);
  // Both slots busy — a critical request is still admitted immediately.
  const auto start = std::chrono::steady_clock::now();
  EXPECT_EQ(ctl.acquire(true, 0.0), Decision::Admitted);
  const auto elapsed = std::chrono::steady_clock::now() - start;
  EXPECT_LT(std::chrono::duration<double>(elapsed).count(), 0.1);
  EXPECT_EQ(ctl.in_flight(), 3u) << "critical admission may exceed the limit";
  ctl.release();
  ctl.release();
  ctl.release();
}

TEST(AdmissionController, QueuedRequestExpiresOnItsDeadline) {
  AdmissionController ctl(small_config());
  ASSERT_EQ(ctl.acquire(false, 0.0), Decision::Admitted);
  ASSERT_EQ(ctl.acquire(false, 0.0), Decision::Admitted);
  const auto start = std::chrono::steady_clock::now();
  EXPECT_EQ(ctl.acquire(false, /*deadline_remaining=*/0.08), Decision::Expired);
  const double waited =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
  EXPECT_GE(waited, 0.07);
  EXPECT_LT(waited, 0.4) << "expiry must fire near the deadline, not at max_queue_wait";
  EXPECT_EQ(ctl.expired(), 1u);
  ctl.release();
  ctl.release();
}

TEST(AdmissionController, MaxQueueWaitBoundsOccupancy) {
  auto cfg = small_config();
  cfg.max_queue_wait = 0.1;
  AdmissionController ctl(cfg);
  ASSERT_EQ(ctl.acquire(false, 0.0), Decision::Admitted);
  ASSERT_EQ(ctl.acquire(false, 0.0), Decision::Admitted);
  const auto start = std::chrono::steady_clock::now();
  EXPECT_EQ(ctl.acquire(false, 0.0), Decision::Shed);
  const double waited =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
  EXPECT_GE(waited, 0.09);
  EXPECT_LT(waited, 0.5);
  ctl.release();
  ctl.release();
}

TEST(AdmissionController, CloseShedsWaitersAndSubsequentAcquires) {
  AdmissionController ctl(small_config());
  ASSERT_EQ(ctl.acquire(false, 0.0), Decision::Admitted);
  ASSERT_EQ(ctl.acquire(false, 0.0), Decision::Admitted);
  std::atomic<int> sheds{0};
  std::vector<std::thread> waiters;
  for (int i = 0; i < 2; ++i) {
    waiters.emplace_back([&] {
      if (ctl.acquire(false, 0.0) == Decision::Shed) ++sheds;
    });
  }
  while (ctl.queued() < 2) std::this_thread::sleep_for(std::chrono::milliseconds(1));
  ctl.close();
  for (auto& t : waiters) t.join();
  EXPECT_EQ(sheds.load(), 2);
  EXPECT_EQ(ctl.acquire(false, 0.0), Decision::Shed);
  EXPECT_EQ(ctl.acquire(true, 0.0), Decision::Shed) << "closed sheds critical too";
}

// ---- RetryBudget -----------------------------------------------------------

TEST(RetryBudget, StartsFullAndDrains) {
  RetryBudget budget(RetryBudget::Config{0.1, 3.0});
  // Bucket starts at cap: three retries pass, the fourth is suppressed.
  EXPECT_TRUE(budget.try_spend("ep"));
  EXPECT_TRUE(budget.try_spend("ep"));
  EXPECT_TRUE(budget.try_spend("ep"));
  EXPECT_FALSE(budget.try_spend("ep"));
}

TEST(RetryBudget, AttemptsEarnTokensBack) {
  RetryBudget budget(RetryBudget::Config{0.1, 3.0});
  while (budget.try_spend("ep")) {
  }
  // 10 first attempts at ratio 0.1 earn exactly one retry back.
  for (int i = 0; i < 10; ++i) budget.on_attempt("ep");
  EXPECT_TRUE(budget.try_spend("ep"));
  EXPECT_FALSE(budget.try_spend("ep"));
}

TEST(RetryBudget, CapBoundsEarning) {
  RetryBudget budget(RetryBudget::Config{0.5, 2.0});
  for (int i = 0; i < 100; ++i) budget.on_attempt("ep");
  EXPECT_DOUBLE_EQ(budget.tokens("ep"), 2.0);
  EXPECT_TRUE(budget.try_spend("ep"));
  EXPECT_TRUE(budget.try_spend("ep"));
  EXPECT_FALSE(budget.try_spend("ep"));
}

TEST(RetryBudget, EndpointsAreIndependent) {
  RetryBudget budget(RetryBudget::Config{0.1, 1.0});
  EXPECT_TRUE(budget.try_spend("a"));
  EXPECT_FALSE(budget.try_spend("a"));
  EXPECT_TRUE(budget.try_spend("b")) << "draining endpoint a must not affect b";
}

// ---- DispatchDeadlineScope -------------------------------------------------

TEST(DispatchDeadlineScope, AbsentByDefault) {
  EXPECT_FALSE(current_dispatch_remaining().has_value());
}

TEST(DispatchDeadlineScope, InstallsAndRestores) {
  {
    DispatchDeadlineScope outer(1.0);
    const auto r = current_dispatch_remaining();
    ASSERT_TRUE(r.has_value());
    EXPECT_GT(*r, 0.9);
    EXPECT_LE(*r, 1.0);
    {
      // Nesting shrinks; leaving restores the outer budget.
      DispatchDeadlineScope inner(0.2);
      const auto ri = current_dispatch_remaining();
      ASSERT_TRUE(ri.has_value());
      EXPECT_LE(*ri, 0.2);
    }
    const auto r2 = current_dispatch_remaining();
    ASSERT_TRUE(r2.has_value());
    EXPECT_GT(*r2, 0.5);
  }
  EXPECT_FALSE(current_dispatch_remaining().has_value());
}

TEST(DispatchDeadlineScope, NonPositiveInstallsNone) {
  DispatchDeadlineScope outer(1.0);
  {
    // A deadline-free request dispatched while an outer scope exists owes
    // the outer caller nothing — it shadows with "no deadline".
    DispatchDeadlineScope inner(0.0);
    EXPECT_FALSE(current_dispatch_remaining().has_value());
  }
  EXPECT_TRUE(current_dispatch_remaining().has_value());
}

TEST(DispatchDeadlineScope, IsThreadLocal) {
  DispatchDeadlineScope scope(5.0);
  std::thread other([] { EXPECT_FALSE(current_dispatch_remaining().has_value()); });
  other.join();
}

}  // namespace
