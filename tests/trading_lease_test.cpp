// Offer leases and agent heartbeats: crashed hosts' offers expire on their
// own, keeping trader information fresh (paper SIV: "we must guarantee that
// the trader has access to information about all available objects").
#include <gtest/gtest.h>

#include "core/infrastructure.h"

namespace adapt::trading {
namespace {

using orb::FunctionServant;

class LeaseTest : public ::testing::Test {
 protected:
  LeaseTest()
      : clock_(std::make_shared<SimClock>()),
        orb_(orb::Orb::create()),
        trader_(orb_, {.name = "lease-trader", .clock = clock_}) {
    trader_.types().add({.name = "Svc"});
    provider_ = orb_->register_servant(FunctionServant::make("Svc"));
  }

  std::string export_with_lease(double lease) {
    return trader_.export_offer("Svc", provider_, {}, lease);
  }

  std::shared_ptr<SimClock> clock_;
  orb::OrbPtr orb_;
  Trader trader_;
  ObjectRef provider_;
};

TEST_F(LeaseTest, UnleasedOffersNeverExpire) {
  export_with_lease(0);
  clock_->advance(1e9);
  EXPECT_EQ(trader_.query("Svc", "").size(), 1u);
  EXPECT_EQ(trader_.purge_expired(), 0u);
}

TEST_F(LeaseTest, LeasedOfferExpiresFromQueries) {
  export_with_lease(60.0);
  EXPECT_EQ(trader_.query("Svc", "").size(), 1u);
  clock_->advance(59.0);
  EXPECT_EQ(trader_.query("Svc", "").size(), 1u);
  clock_->advance(2.0);
  EXPECT_EQ(trader_.query("Svc", "").size(), 0u);
}

TEST_F(LeaseTest, RefreshExtendsLease) {
  const std::string id = export_with_lease(60.0);
  clock_->advance(50.0);
  trader_.refresh(id, 60.0);
  clock_->advance(50.0);  // t=100; would have expired at 60 without refresh
  EXPECT_EQ(trader_.query("Svc", "").size(), 1u);
  clock_->advance(70.0);  // t=170 > 110
  EXPECT_EQ(trader_.query("Svc", "").size(), 0u);
}

TEST_F(LeaseTest, RefreshCanMakePermanent) {
  const std::string id = export_with_lease(60.0);
  trader_.refresh(id, 0);
  clock_->advance(1e6);
  EXPECT_EQ(trader_.query("Svc", "").size(), 1u);
}

TEST_F(LeaseTest, RefreshExpiredOfferThrowsAndRemoves) {
  const std::string id = export_with_lease(10.0);
  clock_->advance(20.0);
  EXPECT_THROW(trader_.refresh(id, 60.0), UnknownOffer);
  EXPECT_EQ(trader_.offer_count(), 0u) << "expired offer dropped on failed refresh";
}

TEST_F(LeaseTest, PurgeRemovesOnlyExpired) {
  export_with_lease(10.0);
  export_with_lease(100.0);
  export_with_lease(0);
  clock_->advance(50.0);
  EXPECT_EQ(trader_.purge_expired(), 1u);
  EXPECT_EQ(trader_.offer_count(), 2u);
}

TEST_F(LeaseTest, LeaseViaRegisterServant) {
  auto client_orb = orb::Orb::create();
  TraderClient client(client_orb, trader_.lookup_ref(), trader_.register_ref());
  const std::string id = client.export_offer("Svc", provider_, {}, 30.0);
  clock_->advance(20.0);
  client.refresh(id, 30.0);
  clock_->advance(20.0);
  EXPECT_EQ(trader_.query("Svc", "").size(), 1u);
  clock_->advance(40.0);
  EXPECT_EQ(trader_.query("Svc", "").size(), 0u);
}

// ---- heartbeat through the full stack ------------------------------------

TEST(HeartbeatTest, AgentKeepsOffersAliveUntilItDies) {
  core::Infrastructure infra({.name = "hb-infra"});
  infra.trader().types().add({.name = "Svc"});
  infra.make_host("h");
  auto agent = infra.make_agent("h");
  const ObjectRef provider =
      infra.host_orb("h")->register_servant(FunctionServant::make("Svc"));
  agent->enable_heartbeat(/*period=*/30.0, /*lease=*/90.0);
  agent->export_offer("Svc", provider, {});

  // Alive: heartbeats every 30 s keep the 90 s lease fresh indefinitely.
  infra.run_for(600.0);
  EXPECT_EQ(infra.trader().query("Svc", "").size(), 1u);
  EXPECT_GT(agent->heartbeats_sent(), 10u);

  // "Crash" the agent (stop heartbeating without withdrawing).
  agent->disable_heartbeat();
  infra.run_for(91.0);
  EXPECT_EQ(infra.trader().query("Svc", "").size(), 0u)
      << "offer expired on its own after the host died";
}

TEST(HeartbeatTest, HeartbeatCoversPreexistingOffers) {
  core::Infrastructure infra({.name = "hb-pre"});
  infra.trader().types().add({.name = "Svc"});
  infra.make_host("h");
  auto agent = infra.make_agent("h");
  const ObjectRef provider =
      infra.host_orb("h")->register_servant(FunctionServant::make("Svc"));
  agent->export_offer("Svc", provider, {});  // permanent at first
  agent->enable_heartbeat(10.0, 30.0);       // now leased
  infra.run_for(200.0);
  EXPECT_EQ(infra.trader().query("Svc", "").size(), 1u);
  agent->disable_heartbeat();
  infra.run_for(31.0);
  EXPECT_EQ(infra.trader().query("Svc", "").size(), 0u);
}

TEST(HeartbeatTest, InvalidParametersRejected) {
  core::Infrastructure infra({.name = "hb-bad"});
  infra.make_host("h");
  auto agent = infra.make_agent("h");
  EXPECT_THROW(agent->enable_heartbeat(0, 10), Error);
  EXPECT_THROW(agent->enable_heartbeat(10, 0), Error);
}

TEST(HeartbeatTest, ProxyStopsSeeingDeadHost) {
  // End-to-end liveness: a proxy fails over to a live host after the dead
  // host's offer expires.
  core::Infrastructure infra({.name = "hb-proxy"});
  infra.trader().types().add({.name = "Svc"});
  for (const std::string name : {"live", "doomed"}) {
    infra.make_host(name);
    auto agent = infra.make_agent(name);
    auto servant = FunctionServant::make("Svc");
    servant->on("whoami", [name](const ValueList&) { return Value(name); });
    const ObjectRef provider = infra.host_orb(name)->register_servant(servant, "svc");
    agent->enable_heartbeat(30.0, 90.0);
    agent->export_offer("Svc", provider, {});
  }
  core::SmartProxyConfig cfg;
  cfg.service_type = "Svc";
  cfg.monitor_property = "";
  auto proxy = infra.make_proxy(cfg);
  // Select repeatedly; with "first" preference the doomed host may win now.
  ASSERT_TRUE(proxy->select());

  // Kill the "doomed" host: servant unregistered AND heartbeats stop.
  infra.host_orb("doomed")->unregister_servant("svc");
  infra.agent("doomed")->disable_heartbeat();
  infra.run_for(120.0);  // lease expires
  EXPECT_EQ(proxy->invoke("whoami").as_string(), "live");
  // Future selections can never pick the dead host again.
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(proxy->select());
    EXPECT_EQ(proxy->invoke("whoami").as_string(), "live");
  }
}

}  // namespace
}  // namespace adapt::trading
