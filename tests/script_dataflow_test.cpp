// Dataflow-pass tests: capability inference through aliases (locals, table
// fields, closures), taint tracking from remote data into privileged sinks,
// cost certification (unbounded loops / recursion), the constant/interval
// diagnostics, the inferred manifest, and the engine's verdict cache.
#include "script/analysis/dataflow.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "script/analysis/analyzer.h"
#include "script/analysis/policy.h"
#include "script/engine.h"

namespace adapt::script::analysis {
namespace {

bool has_code(const std::vector<Diagnostic>& diags, const std::string& code) {
  return std::any_of(diags.begin(), diags.end(),
                     [&](const Diagnostic& d) { return d.code == code; });
}

size_t count_code(const std::vector<Diagnostic>& diags, const std::string& code) {
  return static_cast<size_t>(std::count_if(
      diags.begin(), diags.end(), [&](const Diagnostic& d) { return d.code == code; }));
}

const Diagnostic* find_code(const std::vector<Diagnostic>& diags, const std::string& code) {
  for (const auto& d : diags) {
    if (d.code == code) return &d;
  }
  return nullptr;
}

/// A catalog shaped like a live agent engine: stdlib (read/readfrom are
/// taint sources), a privileged trading namespace, the lb tuning sink, the
/// events taint source, and a host wrapper object with a method sink.
NativeRegistry make_catalog() {
  NativeRegistry reg;
  declare_stdlib_signatures(reg);
  reg.declare("trading.query", 1, 4);
  reg.tag("trading", "trading");
  reg.declare("lb.set_policy", 1, 2);
  reg.tag("lb", "lb");
  reg.mark_sink("lb.set_policy", "retunes replica balancing policy");
  reg.declare("events.last", 0, 1);
  reg.tag("events", "events");
  reg.mark_taint_source("events.last");
  reg.declare_global("agent0");
  reg.mark_method_sink("run_script", "evaluates code on the agent");
  return reg;
}

AnalysisReport run(const std::string& source, const CapabilityPolicy* policy) {
  AnalyzeOptions opts;
  opts.policy = policy;
  return analyze_source_full(source, "=test", make_catalog(), opts);
}

// ---- capability inference through aliases ----------------------------------

TEST(AliasTest, LocalAliasOfPrivilegedNativeFlaggedAtReadAndCall) {
  const auto report = run("local f = trading.query\nreturn f(\"Svc\")", &monitor_policy());
  // The resolver flags the privileged *read* (line 1); the dataflow pass
  // flags the laundered *call* (line 2). Both must be present.
  EXPECT_GE(count_code(report.diags, codes::kPolicyViolation), 2u);
  const Diagnostic* d = find_code(report.diags, codes::kPolicyViolation);
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->severity, Severity::Error);
}

TEST(AliasTest, AliasAllowedUnderPermissivePolicy) {
  const auto report = run("local f = trading.query\nreturn f(\"Svc\")", &strategy_policy());
  EXPECT_FALSE(has_code(report.diags, codes::kPolicyViolation));
}

TEST(AliasTest, TableFieldAliasFlagged) {
  const auto report = run(
      "local t = {}\nt.q = trading.query\nreturn t.q(\"Svc\")", &monitor_policy());
  EXPECT_TRUE(has_code(report.diags, codes::kPolicyViolation));
}

TEST(AliasTest, ClosureReturnAliasFlagged) {
  const auto report = run(
      "local get = function() return trading.query end\n"
      "local f = get()\n"
      "return f(\"Svc\")",
      &monitor_policy());
  EXPECT_TRUE(has_code(report.diags, codes::kPolicyViolation));
}

TEST(AliasTest, UnprivilegedAliasClean) {
  const auto report = run(
      "local f = tostring\nreturn f(42)", &monitor_policy());
  EXPECT_FALSE(has_code(report.diags, codes::kPolicyViolation));
}

// ---- taint tracking --------------------------------------------------------

TEST(TaintTest, FunctionParamIntoSinkFlagged) {
  // Hosts call shipped functions with remote event payloads: a parameter
  // steering a privileged sink is a tainted-sink error.
  const auto report = run(
      "handler = function(ev)\n  lb.set_policy(ev)\nend", &strategy_policy());
  const Diagnostic* d = find_code(report.diags, codes::kTaintedSink);
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->severity, Severity::Error);
  EXPECT_EQ(d->line, 2);
}

TEST(TaintTest, TaintSourceResultIntoSinkFlagged) {
  const auto report = run(
      "local v = events.last(\"load\")\nlb.set_policy(v)", &strategy_policy());
  EXPECT_TRUE(has_code(report.diags, codes::kTaintedSink));
}

TEST(TaintTest, ConstantArgumentIntoSinkClean) {
  const auto report = run("lb.set_policy(\"p2c\")", &strategy_policy());
  EXPECT_FALSE(has_code(report.diags, codes::kTaintedSink));
}

TEST(TaintTest, TaintThroughTableFieldFlagged) {
  const auto report = run(
      "local t = {}\nt.v = events.last(\"load\")\nlb.set_policy(t.v)", &strategy_policy());
  EXPECT_TRUE(has_code(report.diags, codes::kTaintedSink));
}

TEST(TaintTest, TaintedTablePassedWholeFlagged) {
  // carries_taint walks table fields: passing the whole table launders
  // nothing.
  const auto report = run(
      "local t = {}\nt.v = events.last(\"load\")\nlb.set_policy(t)", &strategy_policy());
  EXPECT_TRUE(has_code(report.diags, codes::kTaintedSink));
}

TEST(TaintTest, MethodSinkFlaggedRegardlessOfReceiver) {
  const auto report = run(
      "handler = function(ev)\n  agent0:run_script(ev)\nend", &strategy_policy());
  EXPECT_TRUE(has_code(report.diags, codes::kTaintedSink));
}

TEST(TaintTest, PcallLaunderingFlagged) {
  const auto report = run(
      "handler = function(ev)\n  pcall(lb.set_policy, ev)\nend", &strategy_policy());
  EXPECT_TRUE(has_code(report.diags, codes::kTaintedSink));
}

TEST(TaintTest, NoTaintCheckingUnderShellPolicy) {
  const auto report = run(
      "handler = function(ev)\n  lb.set_policy(ev)\nend", &shell_policy());
  EXPECT_FALSE(has_code(report.diags, codes::kTaintedSink));
}

// ---- cost certification ----------------------------------------------------

TEST(CostTest, WhileTrueWithoutExitFlagged) {
  const auto report = run(
      "spin = function()\n"
      "  local i = 0\n"
      "  while true do\n"
      "    i = i + 1\n"
      "  end\n"
      "end",
      &monitor_policy());
  const Diagnostic* d = find_code(report.diags, codes::kUnboundedLoop);
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->severity, Severity::Error);
  EXPECT_FALSE(report.cost_bounded);
}

TEST(CostTest, WhileTrueWithBreakClean) {
  const auto report = run(
      "spin = function()\n"
      "  local i = 0\n"
      "  while true do\n"
      "    i = i + 1\n"
      "    if i > 10 then break end\n"
      "  end\n"
      "  return i\n"
      "end",
      &monitor_policy());
  EXPECT_FALSE(has_code(report.diags, codes::kUnboundedLoop));
  EXPECT_TRUE(report.cost_bounded);
}

TEST(CostTest, RepeatUntilFalseFlagged) {
  const auto report = run(
      "spin = function()\n"
      "  repeat\n"
      "    print(\"tick\")\n"
      "  until false\n"
      "end",
      &monitor_policy());
  EXPECT_TRUE(has_code(report.diags, codes::kUnboundedLoop));
}

TEST(CostTest, ZeroStepNumericForFlagged) {
  const auto report = run(
      "f = function()\n"
      "  for i = 1, 10, 0 do\n"
      "    print(i)\n"
      "  end\n"
      "end",
      &monitor_policy());
  EXPECT_TRUE(has_code(report.diags, codes::kUnboundedLoop));
}

TEST(CostTest, BoundedNumericForClean) {
  const auto report = run(
      "f = function()\n"
      "  local total = 0\n"
      "  for i = 1, 8 do\n"
      "    total = total + i\n"
      "  end\n"
      "  return total\n"
      "end",
      &monitor_policy());
  EXPECT_FALSE(has_code(report.diags, codes::kUnboundedLoop));
  EXPECT_TRUE(report.cost_bounded);
}

TEST(CostTest, DirectRecursionFlagged) {
  const auto report = run(
      "fact = function(n)\n  return fact(n)\nend", &monitor_policy());
  const Diagnostic* d = find_code(report.diags, codes::kUnboundedRecursion);
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->severity, Severity::Error);
  EXPECT_FALSE(report.cost_bounded);
}

TEST(CostTest, MutualRecursionFlagged) {
  // ping is defined before pong exists: the call graph is expanded by name
  // after the pass, so definition order must not hide the cycle.
  const auto report = run(
      "ping = function(n)\n  return pong(n)\nend\n"
      "pong = function(n)\n  return ping(n)\nend",
      &monitor_policy());
  EXPECT_TRUE(has_code(report.diags, codes::kUnboundedRecursion));
}

TEST(CostTest, LoopsAllowedUnderStrategyPolicy) {
  // Strategies run off the hot path: cost certification is monitor-only.
  const auto report = run(
      "spin = function()\n  while true do\n    print(\"x\")\n  end\nend",
      &strategy_policy());
  EXPECT_FALSE(has_code(report.diags, codes::kUnboundedLoop));
}

TEST(CostTest, PaperFig3AspectCleanUnderMonitorPolicy) {
  // The paper's Fig. 3 load-average aspect — io reads, bounded branches —
  // must pass the strictest policy unchanged.
  const auto report = run(
      "aspect = function(self, currval, monitor)\n"
      "  if currval[1] > currval[2] then\n"
      "    return \"yes\"\n"
      "  else\n"
      "    return \"no\"\n"
      "  end\n"
      "end",
      &monitor_policy());
  EXPECT_FALSE(has_errors(report.diags));
  EXPECT_TRUE(report.cost_bounded);
}

// ---- constant / interval diagnostics ---------------------------------------

TEST(ConstTest, DivisionByConstantZeroWarned) {
  const auto report = run("local d = 0\nreturn 1 / d", nullptr);
  const Diagnostic* d = find_code(report.diags, codes::kDivByZero);
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->severity, Severity::Warning);
  EXPECT_EQ(d->line, 2);
}

TEST(ConstTest, AlwaysTrueComparisonWarned) {
  const auto report = run(
      "local x = 5\nif x > 1 then\n  result = 1\nend\nreturn result", nullptr);
  EXPECT_TRUE(has_code(report.diags, codes::kAlwaysTrueCondition));
}

TEST(ConstTest, UnknownComparisonNotWarned) {
  const auto report = run(
      "f = function(v)\n  if v > 1 then\n    return 1\n  end\n  return 2\nend", nullptr);
  EXPECT_FALSE(has_code(report.diags, codes::kAlwaysTrueCondition));
}

TEST(ConstTest, DeadStoreWarned) {
  const auto report = run("local x = 1\nx = 2\nreturn x", nullptr);
  const Diagnostic* d = find_code(report.diags, codes::kDeadStore);
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->severity, Severity::Warning);
}

TEST(ConstTest, LoopCarriedValueIsNotDeadStoreOrAlwaysTrue) {
  const auto report = run(
      "local x = 0\n"
      "for i = 1, 3 do\n"
      "  if x < 2 then\n"
      "    x = x + 1\n"
      "  end\n"
      "end\n"
      "return x",
      nullptr);
  EXPECT_FALSE(has_code(report.diags, codes::kDeadStore));
  EXPECT_FALSE(has_code(report.diags, codes::kAlwaysTrueCondition));
}

TEST(ConstTest, NilReassignmentIsNotDeadStore) {
  // `x = nil` is the idiomatic "release" and must not be flagged.
  const auto report = run("local x = {}\nx = nil\nreturn x", nullptr);
  EXPECT_FALSE(has_code(report.diags, codes::kDeadStore));
}

// ---- inferred manifest -----------------------------------------------------

TEST(ManifestTest, CapabilitiesAndSinksCollected) {
  const auto report = run(
      "local offers = trading.query(\"Svc\")\n"
      "lb.set_policy(\"p2c\")\n"
      "return offers",
      &strategy_policy());
  EXPECT_FALSE(has_errors(report.diags));
  EXPECT_TRUE(report.capabilities.count("trading"));
  EXPECT_TRUE(report.capabilities.count("lb"));
  EXPECT_TRUE(report.sinks.count("lb.set_policy"));
  EXPECT_TRUE(report.cost_bounded);
}

TEST(ManifestTest, AliasedCapabilityStillAppears) {
  const auto report = run(
      "local f = trading.query\nreturn f(\"Svc\")", &strategy_policy());
  EXPECT_TRUE(report.capabilities.count("trading"));
}

TEST(ManifestTest, UnprivilegedChunkHasEmptyManifest) {
  const auto report = run("return tostring(1 + 2)", &strategy_policy());
  EXPECT_TRUE(report.capabilities.empty());
  EXPECT_TRUE(report.sinks.empty());
}

// ---- verdict cache ---------------------------------------------------------

TEST(VerdictCacheTest, SecondAnalysisHits) {
  ScriptEngine engine;
  const std::string code = "return 1 + 1";
  const auto first = engine.analyze_cached(code);
  EXPECT_FALSE(first.cache_hit);
  const auto second = engine.analyze_cached(code);
  EXPECT_TRUE(second.cache_hit);
  EXPECT_EQ(first.diags.size(), second.diags.size());
}

TEST(VerdictCacheTest, PolicyIsPartOfTheKey) {
  ScriptEngine engine;
  engine.natives().declare("trading.query", 1, 4);
  engine.natives().tag("trading", "trading");
  const std::string code = "return trading.query(\"Svc\")";
  EXPECT_FALSE(engine.analyze_cached(code, "=a", &shell_policy()).cache_hit);
  // Same code, stricter policy: must re-analyze (and find the violation).
  const auto mon = engine.analyze_cached(code, "=a", &monitor_policy());
  EXPECT_FALSE(mon.cache_hit);
  EXPECT_TRUE(has_errors(mon.diags));
}

TEST(VerdictCacheTest, NewNativeInvalidates) {
  ScriptEngine engine;
  const std::string code = "return print";
  engine.analyze_cached(code);
  EXPECT_TRUE(engine.analyze_cached(code).cache_hit);
  engine.natives().declare("late.binding", 0, 0);
  EXPECT_FALSE(engine.analyze_cached(code).cache_hit);
}

TEST(VerdictCacheTest, NewGlobalInvalidatesButRebindDoesNot) {
  ScriptEngine engine;
  const std::string code = "return print";
  engine.analyze_cached(code);
  engine.set_global("fresh", Value(1.0));
  EXPECT_FALSE(engine.analyze_cached(code).cache_hit) << "new name changes resolution";
  engine.analyze_cached(code);
  // Rebinding an existing global (the smart-proxy handle pattern) must not
  // evict hot-path verdicts.
  engine.set_global("fresh", Value(2.0));
  EXPECT_TRUE(engine.analyze_cached(code).cache_hit);
}

TEST(VerdictCacheTest, ParseErrorsNeverCached) {
  ScriptEngine engine;
  const std::string code = "return 1 +";
  const auto first = engine.analyze_cached(code, "=one");
  ASSERT_FALSE(first.diags.empty());
  EXPECT_EQ(first.diags[0].code, codes::kParseError);
  // The verdict embeds the chunk name, so it must be recomputed per call.
  const auto second = engine.analyze_cached(code, "=two");
  EXPECT_FALSE(second.cache_hit);
}

TEST(VerdictCacheTest, FunctionVariantWrapsLikeCompileFunction) {
  ScriptEngine engine;
  const std::string fn = "function(a, b)\n  return a + b\nend";
  const auto first = engine.analyze_function_cached(fn);
  EXPECT_FALSE(has_errors(first.diags));
  EXPECT_TRUE(engine.analyze_function_cached(fn).cache_hit);
  // The chunk variant sees the same bytes differently (a bare function
  // literal is not a valid statement), so the two caches cannot collide.
  const auto chunk = engine.analyze_cached(fn);
  EXPECT_FALSE(chunk.cache_hit);
  EXPECT_TRUE(has_errors(chunk.diags));
}

}  // namespace
}  // namespace adapt::script::analysis
