// Simulated-environment tests: load-average dynamics, workload generators,
// statistics, and the synthetic image store.
#include <gtest/gtest.h>

#include <cmath>

#include "script/engine.h"
#include "sim/host.h"
#include "sim/image_store.h"
#include "sim/workload.h"

namespace adapt::sim {
namespace {

class HostTest : public ::testing::Test {
 protected:
  HostTest()
      : clock_(std::make_shared<SimClock>()),
        timers_(std::make_shared<TimerService>(clock_)),
        host_(std::make_shared<Host>(HostConfig{.name = "h1"}, timers_)) {
    host_->start();
  }
  std::shared_ptr<SimClock> clock_;
  std::shared_ptr<TimerService> timers_;
  HostPtr host_;
};

TEST_F(HostTest, IdleHostHasZeroLoad) {
  timers_->run_for(600.0);
  const auto load = host_->loadavg();
  EXPECT_DOUBLE_EQ(load[0], 0.0);
  EXPECT_DOUBLE_EQ(load[1], 0.0);
  EXPECT_DOUBLE_EQ(load[2], 0.0);
}

TEST_F(HostTest, LoadConvergesToJobCount) {
  host_->set_background_jobs(8.0);
  timers_->run_for(3600.0);  // one hour >> all horizons
  const auto load = host_->loadavg();
  EXPECT_NEAR(load[0], 8.0, 0.1);
  EXPECT_NEAR(load[1], 8.0, 0.2);
  EXPECT_NEAR(load[2], 8.0, 0.5);
}

TEST_F(HostTest, OneMinuteAverageReactsFastest) {
  host_->set_background_jobs(10.0);
  timers_->run_for(60.0);
  const auto load = host_->loadavg();
  EXPECT_GT(load[0], load[1]) << "1-min window reacts faster than 5-min";
  EXPECT_GT(load[1], load[2]) << "5-min window reacts faster than 15-min";
  // After one 60 s horizon the 1-min load should be ~(1 - 1/e) of target.
  EXPECT_NEAR(load[0], 10.0 * (1 - std::exp(-1.0)), 0.5);
}

TEST_F(HostTest, LoadDecaysWhenJobsLeave) {
  host_->set_background_jobs(10.0);
  timers_->run_for(1200.0);
  host_->set_background_jobs(0.0);
  timers_->run_for(300.0);  // 5 half-lives of the 1-min window
  const auto load = host_->loadavg();
  EXPECT_LT(load[0], 0.2);
  EXPECT_GT(load[2], load[0]) << "15-min average remembers the past longer";
}

TEST_F(HostTest, IncreasingSignalMatchesPaperHeuristic) {
  // While ramping up, 1-min > 5-min (the Fig. 3 'increasing' test).
  host_->set_background_jobs(20.0);
  timers_->run_for(120.0);
  auto load = host_->loadavg();
  EXPECT_GT(load[0], load[1]);
  // Once load stops, 1-min falls below 5-min (decreasing).
  host_->set_background_jobs(0.0);
  timers_->run_for(120.0);
  load = host_->loadavg();
  EXPECT_LT(load[0], load[1]);
}

TEST_F(HostTest, RecordedWorkShowsUpAsInducedLoad) {
  // 2.5 s of CPU per 5 s sample interval = utilization 0.5.
  timers_->schedule_every(1.0, [this] { host_->record_work(0.5); });
  timers_->run_for(600.0);
  EXPECT_NEAR(host_->ready_jobs(), 0.5, 0.05);
  EXPECT_NEAR(host_->loadavg()[0], 0.5, 0.1);
  EXPECT_GT(host_->total_work(), 200.0);
}

TEST_F(HostTest, ResponseTimeScalesWithLoad) {
  EXPECT_DOUBLE_EQ(host_->response_time(0.1), 0.1);
  host_->set_background_jobs(4.0);
  EXPECT_DOUBLE_EQ(host_->response_time(0.1), 0.5);  // base * (1 + 4)
}

TEST_F(HostTest, BackgroundJobsNeverNegative) {
  host_->add_background_jobs(-5.0);
  EXPECT_DOUBLE_EQ(host_->background_jobs(), 0.0);
  host_->add_background_jobs(3.0);
  host_->add_background_jobs(-10.0);
  EXPECT_DOUBLE_EQ(host_->background_jobs(), 0.0);
}

TEST_F(HostTest, LoadavgValueIsPaperShapedTable) {
  host_->set_background_jobs(5.0);
  timers_->run_for(600.0);
  const Value v = host_->loadavg_value();
  ASSERT_TRUE(v.is_table());
  EXPECT_EQ(v.as_table()->length(), 3);
  EXPECT_GT(v.as_table()->geti(1).as_number(), 0.0);
}

TEST_F(HostTest, LoadavgSourceCallable) {
  auto source = make_loadavg_source(host_);
  host_->set_background_jobs(2.0);
  timers_->run_for(600.0);
  script::ScriptEngine eng;
  eng.set_global("src", Value(source));
  const Value v = eng.eval1("local t = src() return t[1]");
  EXPECT_NEAR(v.as_number(), 2.0, 0.1);
}

TEST_F(HostTest, LoadSpikeScheduling) {
  schedule_load_spike(*timers_, host_, 100.0, 200.0, 30.0);
  timers_->run_for(50.0);
  EXPECT_DOUBLE_EQ(host_->background_jobs(), 0.0);
  timers_->run_for(100.0);  // t=150, inside the spike
  EXPECT_DOUBLE_EQ(host_->background_jobs(), 30.0);
  timers_->run_for(100.0);  // t=250, after
  EXPECT_DOUBLE_EQ(host_->background_jobs(), 0.0);
}

// ---- workload generators ---------------------------------------------------

TEST(WorkloadTest, ClosedLoopIssuesAtThinkRate) {
  auto clock = std::make_shared<SimClock>();
  auto timers = std::make_shared<TimerService>(clock);
  int calls = 0;
  ClosedLoopClient client(timers, [&] { ++calls; }, 2.0);
  client.start();
  timers->run_for(100.0);
  EXPECT_EQ(calls, 50);
  EXPECT_EQ(client.requests_issued(), 50u);
  client.stop();
  timers->run_for(100.0);
  EXPECT_EQ(calls, 50);
}

TEST(WorkloadTest, OpenLoopApproximatesPoissonRate) {
  auto clock = std::make_shared<SimClock>();
  auto timers = std::make_shared<TimerService>(clock);
  int calls = 0;
  OpenLoopClient client(timers, [&] { ++calls; }, 5.0, 7);
  client.start();
  timers->run_for(1000.0);
  client.stop();
  EXPECT_NEAR(calls, 5000, 300) << "rate 5/s over 1000 s";
}

TEST(WorkloadTest, OpenLoopStopCeasesArrivals) {
  auto clock = std::make_shared<SimClock>();
  auto timers = std::make_shared<TimerService>(clock);
  int calls = 0;
  OpenLoopClient client(timers, [&] { ++calls; }, 10.0);
  client.start();
  timers->run_for(10.0);
  client.stop();
  const int frozen = calls;
  timers->run_for(100.0);
  EXPECT_EQ(calls, frozen);
}

TEST(WorkloadTest, InvalidParametersRejected) {
  auto clock = std::make_shared<SimClock>();
  auto timers = std::make_shared<TimerService>(clock);
  EXPECT_THROW(ClosedLoopClient(timers, [] {}, 0.0), Error);
  EXPECT_THROW(OpenLoopClient(timers, [] {}, -1.0), Error);
}

// ---- stats ------------------------------------------------------------------

TEST(StatsTest, BasicMoments) {
  Stats s;
  for (const double x : {1.0, 2.0, 3.0, 4.0, 5.0}) s.add(x);
  EXPECT_EQ(s.count(), 5u);
  EXPECT_DOUBLE_EQ(s.mean(), 3.0);
  EXPECT_NEAR(s.stddev(), 1.5811, 1e-3);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 5.0);
}

TEST(StatsTest, Percentiles) {
  Stats s;
  for (int i = 1; i <= 100; ++i) s.add(i);
  EXPECT_NEAR(s.percentile(50), 50.5, 1.0);
  EXPECT_NEAR(s.percentile(99), 99.0, 1.0);
  EXPECT_DOUBLE_EQ(s.percentile(0), 1.0);
  EXPECT_DOUBLE_EQ(s.percentile(100), 100.0);
}

TEST(StatsTest, EmptyAndSingle) {
  Stats s;
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.percentile(50), 0.0);
  s.add(7.0);
  EXPECT_DOUBLE_EQ(s.mean(), 7.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
  EXPECT_DOUBLE_EQ(s.percentile(50), 7.0);
}

// ---- image store -----------------------------------------------------------

TEST(ImageStoreTest, RoundtripAndDeterminism) {
  const std::string img = make_image(3, 64, 48);
  const ImageInfo info = parse_image(img);
  EXPECT_EQ(info.index, 3u);
  EXPECT_EQ(info.width, 64u);
  EXPECT_EQ(info.height, 48u);
  EXPECT_EQ(info.payload_bytes, 64u * 48u);
  EXPECT_EQ(image_checksum(img), image_checksum(make_image(3, 64, 48)))
      << "images are deterministic";
  EXPECT_NE(image_checksum(img), image_checksum(make_image(4, 64, 48)));
}

TEST(ImageStoreTest, ParseRejectsGarbage) {
  EXPECT_THROW(parse_image("not an image"), Error);
  std::string truncated = make_image(1, 32, 32);
  truncated.resize(truncated.size() - 10);
  EXPECT_THROW(parse_image(truncated), Error);
}

TEST(ImageStoreTest, WorkModel) {
  EXPECT_GT(image_work_seconds(1920, 1080), image_work_seconds(640, 480));
  EXPECT_GE(image_work_seconds(1, 1), 0.001);
}

}  // namespace
}  // namespace adapt::sim
