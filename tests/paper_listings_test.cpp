// Fidelity tests: the paper's code listings (Figs. 3, 4, 7) run against this
// implementation with only cosmetic changes, and the Figs. 1-2 interfaces
// are exactly reproducible in the interface repository.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "core/infrastructure.h"
#include "monitor/bindings.h"
#include "monitor/monitor.h"

namespace adapt {
namespace {

using core::Infrastructure;
using core::InfrastructureOptions;
using core::SmartProxyConfig;
using orb::FunctionServant;

TEST(PaperListings, Fig1AspectsManagerIdl) {
  orb::InterfaceRepository repo;
  // Fig. 1, with IDL sequence/typedef types mapped to our loose types.
  repo.define_idl(R"(
    interface AspectsManager {
      any getAspectValue(in string name);
      table definedAspects();
      void defineAspect(in string name, in string updatef);
    };
  )");
  ASSERT_TRUE(repo.has("AspectsManager"));
  EXPECT_EQ(repo.find("AspectsManager")->operations.size(), 3u);
}

TEST(PaperListings, Fig2EventMonitorIdl) {
  orb::InterfaceRepository repo;
  repo.define_idl(R"(
    interface EventObserver {
      oneway void notifyEvent(in string evid);
    };
    interface BasicMonitor {
      any getvalue();
      void setvalue(in any newvalue);
    };
    interface EventMonitor : BasicMonitor {
      string attachEventObserver(in object obj, in string evid, in string notifyf);
      void detachEventObserver(in string id);
    };
  )");
  EXPECT_TRUE(repo.find_operation("EventObserver", "notifyEvent")->oneway);
  EXPECT_TRUE(repo.is_a("EventMonitor", "BasicMonitor"));
}

TEST(PaperListings, Fig3LoadAverageMonitorVerbatim) {
  // Fig. 3 verbatim: LoadAverageMonitor() reads /proc/loadavg with
  // readfrom/read and defines the "increasing" aspect. We point the reader
  // at a controllable stand-in file.
  const std::string path = ::testing::TempDir() + "/proc_loadavg_fig3";
  auto write_loadavg = [&](double l1, double l5, double l15) {
    std::ofstream out(path);
    out << l1 << ' ' << l5 << ' ' << l15 << " 1/200 12345\n";
  };
  write_loadavg(0.5, 1.0, 1.5);

  auto clock = std::make_shared<SimClock>();
  auto timers = std::make_shared<TimerService>(clock);
  auto engine = std::make_shared<script::ScriptEngine>(clock);
  auto orb = orb::Orb::create({.name = "fig3-orb"});
  monitor::install_monitor_bindings(*engine, orb, timers);
  engine->set_global("loadavg_path", Value(path));

  engine->eval(R"(
    function LoadAverageMonitor()
      local lmon
      lmon = EventMonitor:new("LoadAvg",
        function()
          readfrom(loadavg_path)
          local nj1,nj5,nj15 = read("*n","*n","*n")
          readfrom()
          return {nj1,nj5,nj15}
        end,
        60) -- update values every minute

      -- create an aspect that represents the tendency to
      -- increase the load in the host
      lmon:defineAspect("increasing",
        [[function(self, currval, monitor)
          if currval[1] > currval[2] then
            return "yes"
          else
            return "no"
          end
        end]])
      return lmon
    end
    mon = LoadAverageMonitor()
  )");
  timers->run_for(60.0);  // first periodic update
  EXPECT_DOUBLE_EQ(engine->eval1("return mon:getvalue()[1]").as_number(), 0.5);
  EXPECT_EQ(engine->eval1("return mon:getAspectValue('increasing')").as_string(), "no");

  write_loadavg(2.0, 1.0, 1.5);
  timers->run_for(60.0);
  EXPECT_DOUBLE_EQ(engine->eval1("return mon:getvalue()[1]").as_number(), 2.0);
  EXPECT_EQ(engine->eval1("return mon:getAspectValue('increasing')").as_string(), "yes");
  std::remove(path.c_str());
}

TEST(PaperListings, Fig4AttachEventObserverVerbatim) {
  // Fig. 4: an application-defined event observer object and the shipped
  // event-diagnosing function, registered with mon:attachEventObserver.
  auto clock = std::make_shared<SimClock>();
  auto timers = std::make_shared<TimerService>(clock);
  auto engine = std::make_shared<script::ScriptEngine>(clock);
  auto orb = orb::Orb::create({.name = "fig4-orb"});
  monitor::install_monitor_bindings(*engine, orb, timers);

  // The observer is a Lua object implementing notifyEvent — served through
  // the DSI adapter (ScriptServant), exactly LuaCorba's mechanism.
  engine->eval(R"(
    notified = {}
    eventObserver = {notifyEvent=function(self, event)
      table.insert(notified, event)
    end}
  )");
  const ObjectRef obs_ref = orb->register_servant(std::make_shared<orb::ScriptServant>(
      engine, engine->get_global("eventObserver"), "EventObserver"));
  engine->set_global("observer_ref", Value(obs_ref));

  engine->eval(R"(
    load = {10, 5, 1}
    mon = EventMonitor:new("LoadAvg", function() return load end, 60)
    mon:defineAspect("increasing",
      [[function(self, currval, monitor)
        if currval[1] > currval[2] then return "yes" else return "no" end
      end]])

    function_code=[[function(observer, value, monitor)
      local incr
      incr=monitor:getAspectValue("increasing")
      return value[1] > 50 and incr == "yes"
    end]]

    mon:attachEventObserver(
      observer_ref,
      "LoadIncrease",
      function_code)
  )");

  timers->run_for(60.0);  // load = {10,...}: below threshold
  EXPECT_DOUBLE_EQ(engine->eval1("return #notified").as_number(), 0.0);
  engine->eval("load = {80, 20, 5}");
  timers->run_for(60.0);
  EXPECT_DOUBLE_EQ(engine->eval1("return #notified").as_number(), 1.0);
  EXPECT_EQ(engine->eval1("return notified[1]").as_string(), "LoadIncrease");
}

TEST(PaperListings, Fig7StrategyTableVerbatim) {
  // Fig. 7 as printed: smartproxy._strategies with the LoadIncrease handler
  // that queries for an alternative and relaxes the threshold otherwise.
  Infrastructure infra{InfrastructureOptions{.name = "fig7"}};
  trading::ServiceTypeDef type;
  type.name = "HelloService";
  infra.trader().types().add(type);
  for (const std::string name : {"srv-1", "srv-2"}) {
    auto servant = FunctionServant::make("Hello");
    servant->on("whoami", [name](const ValueList&) { return Value(name); });
    servant->on("hello", [](const ValueList&) { return Value(); });
    infra.deploy_server(name, "HelloService", servant);
  }

  SmartProxyConfig cfg;
  cfg.service_type = "HelloService";
  cfg.constraint = "LoadAvg < 50 and LoadAvgIncreasing == 'no'";
  cfg.preference = "min LoadAvg";
  auto proxy = infra.make_proxy(cfg);
  proxy->add_interest("LoadIncrease", R"(function(observer, value, monitor)
    local incr
    incr=monitor:getAspectValue("increasing")
    return value[1] > 50 and incr == "yes"
  end)");

  proxy->eval_strategy_script(R"(
    smartproxy._strategies = {
      LoadIncrease = function(self)
        -- get the current load average
        self._loadavg = self._loadavgmon:getvalue()

        -- look for an alternative server
        local query
        query="LoadAvg < 50 and LoadAvgIncreasing == 'no' "
        if not self:_select(query) then
          self._loadavgmon:attachEventObserver(
            self._observer,
            "LoadIncrease",
            [[function(self, value, monitor)
              local incr
              incr=monitor:getAspectValue("increasing")
              return value[1] > 70 and incr == "yes"
            end]])
        end
      end }
  )");

  ASSERT_TRUE(proxy->select());
  EXPECT_EQ(proxy->invoke("whoami").as_string(), "srv-1");
  infra.host("srv-1")->set_background_jobs(200.0);
  infra.run_for(300.0);
  EXPECT_EQ(proxy->invoke("whoami").as_string(), "srv-2")
      << "the Fig. 7 strategy moved the proxy to the alternative server";
}

TEST(PaperListings, HelloWorldApplication) {
  // SV: "we first wrote a very simple HelloWorld application, where the
  // server implemented a single function void hello(); and the client
  // repeatedly called function hello".
  Infrastructure infra{InfrastructureOptions{.name = "hello-app"}};
  infra.trader().types().add({.name = "HelloWorld"});
  auto calls = std::make_shared<int>(0);
  auto servant = FunctionServant::make("HelloWorld");
  servant->on("hello", [calls](const ValueList&) {
    ++*calls;
    return Value();
  });
  infra.deploy_server("hw-host", "HelloWorld", servant);
  SmartProxyConfig cfg;
  cfg.service_type = "HelloWorld";
  auto proxy = infra.make_proxy(cfg);
  for (int i = 0; i < 25; ++i) proxy->invoke("hello");
  EXPECT_EQ(*calls, 25);
}

}  // namespace
}  // namespace adapt
