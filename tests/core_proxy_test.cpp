// SmartProxy tests: selection, fallback, invocation interception, event
// queueing/postponement, strategies (native and script), failover, rebinding.
#include "core/smart_proxy.h"

#include <gtest/gtest.h>

#include "core/infrastructure.h"

namespace adapt::core {
namespace {

using orb::FunctionServant;

/// A server whose "whoami" returns its name; shared by most tests.
orb::ServantPtr named_server(const std::string& name) {
  auto servant = FunctionServant::make("Hello");
  servant->on("whoami", [name](const ValueList&) { return Value(name); });
  servant->on("hello", [](const ValueList&) { return Value(); });
  return servant;
}

class ProxyTest : public ::testing::Test {
 protected:
  ProxyTest() {
    trading::ServiceTypeDef type;
    type.name = "HelloService";
    type.properties = {{"LoadAvg", "number", trading::PropertyDef::Mode::Normal},
                       {"LoadAvgIncreasing", "string", trading::PropertyDef::Mode::Normal},
                       {"LoadAvgMonitor", "object", trading::PropertyDef::Mode::Normal},
                       {"Host", "string", trading::PropertyDef::Mode::Normal}};
    infra_.trader().types().add(type);
  }

  /// Deploys a named server on a fresh host; returns its provider ref.
  ObjectRef deploy(const std::string& host) {
    return infra_.deploy_server(host, "HelloService", named_server(host));
  }

  SmartProxyConfig default_config() {
    SmartProxyConfig cfg;
    cfg.service_type = "HelloService";
    cfg.constraint = "LoadAvg < 50 and LoadAvgIncreasing == 'no'";
    cfg.preference = "min LoadAvg";
    return cfg;
  }

  Infrastructure infra_{InfrastructureOptions{.name = "pt" + std::to_string(counter_++)}};
  static int counter_;
};

int ProxyTest::counter_ = 0;

TEST_F(ProxyTest, SelectsLeastLoadedServer) {
  deploy("host-a");
  deploy("host-b");
  infra_.host("host-a")->set_background_jobs(20.0);
  infra_.run_for(600.0);  // let load averages converge

  auto proxy = infra_.make_proxy(default_config());
  ASSERT_TRUE(proxy->select());
  EXPECT_EQ(proxy->invoke("whoami").as_string(), "host-b");
}

TEST_F(ProxyTest, InvokeAutoSelects) {
  deploy("host-a");
  auto proxy = infra_.make_proxy(default_config());
  EXPECT_FALSE(proxy->bound());
  EXPECT_EQ(proxy->invoke("whoami").as_string(), "host-a");
  EXPECT_TRUE(proxy->bound());
  EXPECT_EQ(proxy->invocations(), 1u);
}

TEST_F(ProxyTest, NoOffersThrowsNoComponentAvailable) {
  auto proxy = infra_.make_proxy(default_config());
  EXPECT_FALSE(proxy->select());
  EXPECT_THROW(proxy->invoke("whoami"), NoComponentAvailable);
}

TEST_F(ProxyTest, FallbackToSortedQueryWhenConstraintFails) {
  // Paper SV: all servers violate the constraint; the proxy must still bind
  // using the sorting-only query.
  deploy("host-a");
  deploy("host-b");
  infra_.host("host-a")->set_background_jobs(80.0);
  infra_.host("host-b")->set_background_jobs(95.0);
  infra_.run_for(1200.0);

  auto proxy = infra_.make_proxy(default_config());
  ASSERT_TRUE(proxy->select());
  EXPECT_EQ(proxy->invoke("whoami").as_string(), "host-a")
      << "fallback keeps the preference: least-loaded of the overloaded";
}

TEST_F(ProxyTest, StrictModeDoesNotFallBack) {
  deploy("host-a");
  infra_.host("host-a")->set_background_jobs(80.0);
  infra_.run_for(1200.0);
  SmartProxyConfig cfg = default_config();
  cfg.fallback_to_sorted = false;
  auto proxy = infra_.make_proxy(cfg);
  EXPECT_FALSE(proxy->select());
}

TEST_F(ProxyTest, CurrentOfferExposesProperties) {
  deploy("host-a");
  auto proxy = infra_.make_proxy(default_config());
  ASSERT_TRUE(proxy->select());
  const auto offer = proxy->current_offer();
  ASSERT_TRUE(offer.has_value());
  EXPECT_EQ(offer->service_type, "HelloService");
  EXPECT_EQ(offer->properties.at("Host").as_string(), "host-a");
  EXPECT_TRUE(offer->properties.at("LoadAvgMonitor").is_object());
}

TEST_F(ProxyTest, CurrentMonitorIsLive) {
  deploy("host-a");
  auto proxy = infra_.make_proxy(default_config());
  ASSERT_TRUE(proxy->select());
  auto mon = proxy->current_monitor();
  ASSERT_TRUE(mon.valid());
  const Value v = mon.getvalue();
  ASSERT_TRUE(v.is_table());
  EXPECT_EQ(mon.getAspectValue("increasing").as_string(), "no");
}

// ---- events & strategies ------------------------------------------------

TEST_F(ProxyTest, EventNotificationQueuesUntilNextInvocation) {
  deploy("host-a");
  auto proxy = infra_.make_proxy(default_config());
  // Interest: the paper's Fig. 4 condition.
  proxy->add_interest("LoadIncrease", R"(function(observer, value, monitor)
    local incr
    incr = monitor:getAspectValue("increasing")
    return value[1] > 50 and incr == "yes"
  end)");
  int strategy_runs = 0;
  proxy->set_strategy("LoadIncrease", [&](SmartProxy&) { ++strategy_runs; });
  ASSERT_TRUE(proxy->select());

  // Load climbs past the threshold; the monitor ticks and notifies.
  infra_.host("host-a")->set_background_jobs(200.0);
  infra_.run_for(180.0);
  EXPECT_GE(proxy->pending_events(), 1u) << "event queued, not yet handled (D1)";
  EXPECT_EQ(strategy_runs, 0) << "postponed until the next service invocation";

  proxy->invoke("hello");
  EXPECT_GE(strategy_runs, 1);
  EXPECT_EQ(proxy->pending_events(), 0u);
}

TEST_F(ProxyTest, ImmediateHandlingWhenPostponementOff) {
  deploy("host-a");
  SmartProxyConfig cfg = default_config();
  cfg.postpone_events = false;
  auto proxy = infra_.make_proxy(cfg);
  proxy->add_interest("LoadIncrease",
                      "function(o, v, m) return v[1] > 50 end");
  int strategy_runs = 0;
  proxy->set_strategy("LoadIncrease", [&](SmartProxy&) { ++strategy_runs; });
  ASSERT_TRUE(proxy->select());
  infra_.host("host-a")->set_background_jobs(200.0);
  infra_.run_for(180.0);
  EXPECT_GE(strategy_runs, 1) << "handled on notification, no invocation needed";
  EXPECT_EQ(proxy->pending_events(), 0u);
}

TEST_F(ProxyTest, StrategyTriggersReselection) {
  deploy("host-a");
  deploy("host-b");
  auto proxy = infra_.make_proxy(default_config());
  proxy->add_interest("LoadIncrease",
                      "function(o, v, m) return v[1] > 50 end");
  proxy->set_strategy("LoadIncrease", [](SmartProxy& p) { p.select(); });
  ASSERT_TRUE(proxy->select());
  EXPECT_EQ(proxy->invoke("whoami").as_string(), "host-a");

  infra_.host("host-a")->set_background_jobs(200.0);
  infra_.run_for(300.0);
  EXPECT_EQ(proxy->invoke("whoami").as_string(), "host-b") << "proxy switched servers";
  EXPECT_GE(proxy->rebinds(), 2u);
  const auto history = proxy->binding_history();
  EXPECT_GE(history.size(), 2u);
}

TEST_F(ProxyTest, ScriptStrategyFig7Style) {
  deploy("host-a");
  deploy("host-b");
  auto proxy = infra_.make_proxy(default_config());
  proxy->add_interest("LoadIncrease",
                      "function(o, v, m) return v[1] > 50 end");
  // The paper's Fig. 7, near verbatim: reselect or relax.
  proxy->eval_strategy_script(R"(
    smartproxy._strategies = {
      LoadIncrease = function(self)
        -- get the current load average
        self._loadavg = self._loadavgmon:getvalue()
        -- look for an alternative server
        local query
        query = "LoadAvg < 50 and LoadAvgIncreasing == 'no' "
        if not self:_select(query) then
          self._loadavgmon:attachEventObserver(
            self._observer,
            "LoadIncrease",
            [[function(observer, value, monitor)
              local incr
              incr = monitor:getAspectValue("increasing")
              return value[1] > 70 and incr == "yes"
            end]])
        end
      end
    }
  )");
  ASSERT_TRUE(proxy->select());
  EXPECT_EQ(proxy->invoke("whoami").as_string(), "host-a");
  infra_.host("host-a")->set_background_jobs(200.0);
  infra_.run_for(300.0);
  EXPECT_EQ(proxy->invoke("whoami").as_string(), "host-b");
  // The strategy stored the load average it saw in self._loadavg.
  const Value seen = proxy->script_self().as_table()->get(Value("_loadavg"));
  EXPECT_TRUE(seen.is_table());
}

TEST_F(ProxyTest, Fig7RelaxationPathRaisesThreshold) {
  // Single overloaded server: _select fails, so the strategy re-attaches
  // with the relaxed 70-threshold predicate (Fig. 7 lines 10-17).
  deploy("host-a");
  auto proxy = infra_.make_proxy(default_config());
  proxy->add_interest("LoadIncrease",
                      "function(o, v, m) return v[1] > 50 end");
  proxy->eval_strategy_script(R"(
    relaxations = 0
    smartproxy._strategies = {
      LoadIncrease = function(self)
        if not self:_select("LoadAvg < 50 and LoadAvgIncreasing == 'no'") then
          relaxations = relaxations + 1
          self._loadavgmon:attachEventObserver(
            self._observer, "LoadIncrease",
            [[function(o, v, m) return v[1] > 70 end]])
        end
      end
    }
  )");
  ASSERT_TRUE(proxy->select());
  infra_.host("host-a")->set_background_jobs(60.0);
  infra_.run_for(300.0);
  proxy->invoke("hello");
  EXPECT_GE(proxy->engine()->get_global("relaxations").as_number(), 1.0);
}

TEST_F(ProxyTest, DeclarativeStrategyReselects) {
  // Paper SVI: simple strategies as data, not code.
  deploy("host-a");
  deploy("host-b");
  auto proxy = infra_.make_proxy(default_config());
  proxy->add_interest("LoadIncrease", "function(o, v, m) return v[1] > 50 end");
  proxy->eval_strategy_script(R"(
    smartproxy._strategies = {
      LoadIncrease = {
        reselect = "LoadAvg < 50 and LoadAvgIncreasing == 'no'",
        set = { last_event = "LoadIncrease" },
      }
    }
  )");
  ASSERT_TRUE(proxy->select());
  EXPECT_EQ(proxy->invoke("whoami").as_string(), "host-a");
  infra_.host("host-a")->set_background_jobs(200.0);
  infra_.run_for(300.0);
  EXPECT_EQ(proxy->invoke("whoami").as_string(), "host-b");
  EXPECT_EQ(proxy->script_self().as_table()->get(Value("last_event")).as_string(),
            "LoadIncrease");
}

TEST_F(ProxyTest, DeclarativeStrategyRelaxesOnFailure) {
  // Single overloaded server: the declarative fallback re-attaches with the
  // relaxed predicate (the Fig. 7 behavior, zero lines of procedural code).
  deploy("host-a");
  auto proxy = infra_.make_proxy(default_config());
  proxy->add_interest("LoadIncrease", "function(o, v, m) return v[1] > 50 end");
  proxy->eval_strategy_script(R"(
    smartproxy._strategies = {
      LoadIncrease = {
        reselect = "LoadAvg < 50 and LoadAvgIncreasing == 'no'",
        on_failure_attach = {
          event = "LoadIncrease",
          predicate = [[function(o, v, m) return v[1] > 70 end]],
        },
      }
    }
  )");
  ASSERT_TRUE(proxy->select());
  auto mon_servant = std::dynamic_pointer_cast<monitor::EventMonitor>(
      infra_.host_orb("host-a")->find_servant(
          proxy->current_monitor().ref().object_id));
  ASSERT_TRUE(mon_servant);
  const size_t observers_before = mon_servant->observer_count();
  infra_.host("host-a")->set_background_jobs(60.0);
  infra_.run_for(300.0);
  proxy->invoke("hello");
  EXPECT_GT(mon_servant->observer_count(), observers_before)
      << "relaxed predicate attached after the failed reselect";
}

TEST_F(ProxyTest, StrategyCodeReplaceableAtRuntime) {
  deploy("host-a");
  auto proxy = infra_.make_proxy(default_config());
  ASSERT_TRUE(proxy->select());
  proxy->set_strategy_code("Ev", "function(self) mark = 'v1' end");
  proxy->enqueue_event("Ev");
  proxy->handle_pending_events();
  EXPECT_EQ(proxy->engine()->get_global("mark").as_string(), "v1");
  proxy->set_strategy_code("Ev", "function(self) mark = 'v2' end");
  proxy->enqueue_event("Ev");
  proxy->handle_pending_events();
  EXPECT_EQ(proxy->engine()->get_global("mark").as_string(), "v2");
}

TEST_F(ProxyTest, ScriptStrategyTakesPrecedenceOverNative) {
  deploy("host-a");
  auto proxy = infra_.make_proxy(default_config());
  ASSERT_TRUE(proxy->select());
  int native_runs = 0;
  proxy->set_strategy("Ev", [&](SmartProxy&) { ++native_runs; });
  proxy->set_strategy_code("Ev", "function(self) script_ran = true end");
  proxy->enqueue_event("Ev");
  proxy->handle_pending_events();
  EXPECT_EQ(native_runs, 0);
  EXPECT_TRUE(proxy->engine()->get_global("script_ran").as_bool());
}

TEST_F(ProxyTest, UnknownEventIsCountedButHarmless) {
  deploy("host-a");
  auto proxy = infra_.make_proxy(default_config());
  ASSERT_TRUE(proxy->select());
  proxy->enqueue_event("NobodyListens");
  proxy->handle_pending_events();
  EXPECT_EQ(proxy->events_handled(), 1u);
}

TEST_F(ProxyTest, FailingStrategyDoesNotBreakInvocation) {
  deploy("host-a");
  auto proxy = infra_.make_proxy(default_config());
  ASSERT_TRUE(proxy->select());
  proxy->set_strategy_code("Bad", "function(self) error('strategy bug') end");
  proxy->enqueue_event("Bad");
  EXPECT_EQ(proxy->invoke("whoami").as_string(), "host-a");
}

TEST_F(ProxyTest, StrategyCanInvokeThroughProxyWithoutDeadlock) {
  deploy("host-a");
  auto proxy = infra_.make_proxy(default_config());
  ASSERT_TRUE(proxy->select());
  proxy->set_strategy_code("Probe",
                           "function(self) probed = self:invoke('whoami') end");
  proxy->enqueue_event("Probe");
  proxy->invoke("hello");
  EXPECT_EQ(proxy->engine()->get_global("probed").as_string(), "host-a");
}

// ---- rebinding mechanics ---------------------------------------------------

TEST_F(ProxyTest, RebindMovesObserverRegistration) {
  const ObjectRef a = deploy("host-a");
  deploy("host-b");
  auto proxy = infra_.make_proxy(default_config());
  proxy->add_interest("LoadIncrease", "function(o, v, m) return false end");
  ASSERT_TRUE(proxy->select());

  // Count observers on each host's monitor via the agents.
  auto mon_a = infra_.agent("host-a");
  (void)a;
  auto monitor_a = proxy->current_monitor();
  ASSERT_TRUE(monitor_a.valid());

  infra_.host("host-a")->set_background_jobs(200.0);
  infra_.run_for(600.0);
  ASSERT_TRUE(proxy->select());  // explicitly reselect to host-b
  EXPECT_EQ(proxy->invoke("whoami").as_string(), "host-b");
  auto monitor_b = proxy->current_monitor();
  ASSERT_TRUE(monitor_b.valid());
  EXPECT_NE(monitor_a.ref().object_id, monitor_b.ref().object_id)
      << "proxy now observes the new component's monitor";
}

TEST_F(ProxyTest, FailoverOnDeadComponent) {
  const ObjectRef a = deploy("host-a");
  deploy("host-b");
  auto proxy = infra_.make_proxy(default_config());
  ASSERT_TRUE(proxy->select());
  EXPECT_EQ(proxy->invoke("whoami").as_string(), "host-a");

  // host-a's server dies (servant unregistered).
  infra_.host_orb("host-a")->unregister_servant(a.object_id);
  EXPECT_EQ(proxy->invoke("whoami").as_string(), "host-b") << "transparent failover";
}

TEST_F(ProxyTest, FailoverDisabledPropagatesError) {
  const ObjectRef a = deploy("host-a");
  SmartProxyConfig cfg = default_config();
  cfg.auto_failover = false;
  auto proxy = infra_.make_proxy(cfg);
  ASSERT_TRUE(proxy->select());
  infra_.host_orb("host-a")->unregister_servant(a.object_id);
  EXPECT_THROW(proxy->invoke("whoami"), orb::ObjectNotFound);
}

TEST_F(ProxyTest, FailoverWithNoAlternativeThrows) {
  const ObjectRef a = deploy("host-a");
  auto proxy = infra_.make_proxy(default_config());
  ASSERT_TRUE(proxy->select());
  infra_.host_orb("host-a")->unregister_servant(a.object_id);
  // The stale offer still points at the dead server; selection avoids the
  // failed provider but there is nothing else.
  EXPECT_THROW(proxy->invoke("whoami"), Error);
}

TEST_F(ProxyTest, ConfigValidation) {
  EXPECT_THROW(SmartProxy::create(nullptr, infra_.lookup_ref(), default_config()), Error);
  auto orb = infra_.make_orb("cfg-client");
  EXPECT_THROW(SmartProxy::create(orb, ObjectRef{}, default_config()), Error);
  SmartProxyConfig cfg;
  EXPECT_THROW(SmartProxy::create(orb, infra_.lookup_ref(), cfg), Error);
}

}  // namespace
}  // namespace adapt::core
