// Trader tests: service types, offer lifecycle, queries with constraints and
// preferences, dynamic properties, policies, federation, remote clients.
#include "trading/trader.h"

#include <gtest/gtest.h>

namespace adapt::trading {
namespace {

using orb::FunctionServant;
using orb::Orb;
using orb::OrbPtr;

class TraderTest : public ::testing::Test {
 protected:
  TraderTest() : orb_(Orb::create()), trader_(orb_, {.name = "t1"}) {
    ServiceTypeDef type;
    type.name = "LoadService";
    type.interface = "";
    type.properties = {
        {"LoadAvg", "number", PropertyDef::Mode::Normal},
        {"Host", "string", PropertyDef::Mode::Mandatory},
        {"Arch", "string", PropertyDef::Mode::MandatoryReadonly},
    };
    trader_.types().add(type);
  }

  /// Exports an offer backed by a trivial servant; returns the offer id.
  std::string export_host(const std::string& host, double load,
                          const std::string& arch = "x86") {
    auto servant = FunctionServant::make("");
    servant->on("hello", [](const ValueList&) { return Value("hi"); });
    const ObjectRef provider = orb_->register_servant(servant);
    PropertyMap props;
    props["LoadAvg"] = OfferedProperty(Value(load));
    props["Host"] = OfferedProperty(Value(host));
    props["Arch"] = OfferedProperty(Value(arch));
    return trader_.export_offer("LoadService", provider, std::move(props));
  }

  OrbPtr orb_;
  Trader trader_;
};

// ---- service types ----------------------------------------------------------

TEST_F(TraderTest, TypeRepositoryBasics) {
  EXPECT_TRUE(trader_.types().has("LoadService"));
  EXPECT_FALSE(trader_.types().has("Nothing"));
  EXPECT_THROW(trader_.types().add({.name = "LoadService"}), DuplicateServiceType);
}

TEST_F(TraderTest, SubtypesParticipateInQueries) {
  ServiceTypeDef sub;
  sub.name = "FastLoadService";
  sub.supertypes = {"LoadService"};
  trader_.types().add(sub);
  EXPECT_TRUE(trader_.types().is_subtype("FastLoadService", "LoadService"));

  auto servant = FunctionServant::make("");
  const ObjectRef provider = orb_->register_servant(servant);
  PropertyMap props;
  props["Host"] = OfferedProperty(Value("h1"));
  props["Arch"] = OfferedProperty(Value("arm"));
  trader_.export_offer("FastLoadService", provider, props);

  EXPECT_EQ(trader_.query("LoadService", "").size(), 1u);
  LookupPolicies exact;
  exact.exact_type_match = true;
  EXPECT_EQ(trader_.query("LoadService", "", "", {}, exact).size(), 0u);
  EXPECT_EQ(trader_.query("FastLoadService", "").size(), 1u);
}

TEST_F(TraderTest, SubtypePropertyConflictRejected) {
  ServiceTypeDef bad;
  bad.name = "BadSub";
  bad.supertypes = {"LoadService"};
  bad.properties = {{"LoadAvg", "string", PropertyDef::Mode::Normal}};
  EXPECT_THROW(trader_.types().add(bad), PropertyMismatch);
}

TEST_F(TraderTest, MaskedTypeRejectsExports) {
  trader_.types().mask("LoadService");
  EXPECT_THROW(export_host("h", 1.0), TradingError);
  trader_.types().unmask("LoadService");
  EXPECT_NO_THROW(export_host("h", 1.0));
}

TEST_F(TraderTest, RemoveTypeWithSubtypesRejected) {
  ServiceTypeDef sub;
  sub.name = "Sub";
  sub.supertypes = {"LoadService"};
  trader_.types().add(sub);
  EXPECT_THROW(trader_.types().remove("LoadService"), TradingError);
  trader_.types().remove("Sub");
  EXPECT_NO_THROW(trader_.types().remove("LoadService"));
}

// ---- offer lifecycle --------------------------------------------------------

TEST_F(TraderTest, ExportAndDescribe) {
  const std::string id = export_host("node-1", 12.0);
  const ServiceOffer offer = trader_.describe(id);
  EXPECT_EQ(offer.service_type, "LoadService");
  EXPECT_DOUBLE_EQ(offer.properties.at("LoadAvg").static_value().as_number(), 12.0);
  EXPECT_EQ(trader_.offer_count(), 1u);
}

TEST_F(TraderTest, ExportValidatesServiceType) {
  auto servant = FunctionServant::make("");
  const ObjectRef provider = orb_->register_servant(servant);
  EXPECT_THROW(trader_.export_offer("NoSuchType", provider, {}), UnknownServiceType);
}

TEST_F(TraderTest, ExportValidatesMandatoryProperties) {
  auto servant = FunctionServant::make("");
  const ObjectRef provider = orb_->register_servant(servant);
  PropertyMap props;  // Host and Arch are mandatory
  props["LoadAvg"] = OfferedProperty(Value(1.0));
  EXPECT_THROW(trader_.export_offer("LoadService", provider, props), PropertyMismatch);
}

TEST_F(TraderTest, ExportValidatesPropertyTypes) {
  auto servant = FunctionServant::make("");
  const ObjectRef provider = orb_->register_servant(servant);
  PropertyMap props;
  props["Host"] = OfferedProperty(Value(42.0));  // must be string
  props["Arch"] = OfferedProperty(Value("x86"));
  EXPECT_THROW(trader_.export_offer("LoadService", provider, props), PropertyMismatch);
}

TEST_F(TraderTest, ExportValidatesInterfaceConformance) {
  orb_->interfaces().define_idl(R"(
    interface Base { void ping(); };
    interface Conforming : Base { void extra(); };
    interface Unrelated { void nope(); };
  )");
  ServiceTypeDef type;
  type.name = "TypedService";
  type.interface = "Base";
  trader_.types().add(type);

  const ObjectRef good = orb_->register_servant(FunctionServant::make("Conforming"));
  const ObjectRef bad = orb_->register_servant(FunctionServant::make("Unrelated"));
  EXPECT_NO_THROW(trader_.export_offer("TypedService", good, {}));
  EXPECT_THROW(trader_.export_offer("TypedService", bad, {}), PropertyMismatch);
}

TEST_F(TraderTest, WithdrawRemovesOffer) {
  const std::string id = export_host("node-1", 10.0);
  trader_.withdraw(id);
  EXPECT_EQ(trader_.offer_count(), 0u);
  EXPECT_THROW(trader_.withdraw(id), UnknownOffer);
  EXPECT_THROW(trader_.describe(id), UnknownOffer);
}

TEST_F(TraderTest, WithdrawProviderRemovesAllItsOffers) {
  auto servant = FunctionServant::make("");
  const ObjectRef provider = orb_->register_servant(servant);
  PropertyMap props;
  props["Host"] = OfferedProperty(Value("h"));
  props["Arch"] = OfferedProperty(Value("x86"));
  trader_.export_offer("LoadService", provider, props);
  trader_.export_offer("LoadService", provider, props);
  export_host("other", 1.0);
  EXPECT_EQ(trader_.withdraw_provider(provider), 2u);
  EXPECT_EQ(trader_.offer_count(), 1u);
}

TEST_F(TraderTest, ModifyChangesProperties) {
  const std::string id = export_host("node-1", 10.0);
  PropertyMap changes;
  changes["LoadAvg"] = OfferedProperty(Value(99.0));
  trader_.modify(id, changes);
  EXPECT_DOUBLE_EQ(trader_.describe(id).properties.at("LoadAvg").static_value().as_number(),
                   99.0);
}

TEST_F(TraderTest, ModifyReadonlyRejected) {
  const std::string id = export_host("node-1", 10.0, "sparc");
  PropertyMap changes;
  changes["Arch"] = OfferedProperty(Value("x86"));
  EXPECT_THROW(trader_.modify(id, changes), PropertyMismatch);
}

// ---- queries ---------------------------------------------------------------

TEST_F(TraderTest, QueryWithConstraint) {
  export_host("light", 10.0);
  export_host("heavy", 90.0);
  const auto results = trader_.query("LoadService", "LoadAvg < 50");
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].properties.at("Host").as_string(), "light");
}

TEST_F(TraderTest, QueryUnknownTypeThrows) {
  EXPECT_THROW(trader_.query("NoType", ""), UnknownServiceType);
}

TEST_F(TraderTest, QueryBadConstraintThrows) {
  EXPECT_THROW(trader_.query("LoadService", "LoadAvg <"), IllegalConstraint);
}

TEST_F(TraderTest, QueryMinPreferenceOrders) {
  export_host("c", 30.0);
  export_host("a", 10.0);
  export_host("b", 20.0);
  const auto results = trader_.query("LoadService", "", "min LoadAvg");
  ASSERT_EQ(results.size(), 3u);
  EXPECT_EQ(results[0].properties.at("Host").as_string(), "a");
  EXPECT_EQ(results[1].properties.at("Host").as_string(), "b");
  EXPECT_EQ(results[2].properties.at("Host").as_string(), "c");
}

TEST_F(TraderTest, QueryMaxPreferenceOrders) {
  export_host("a", 10.0);
  export_host("b", 20.0);
  const auto results = trader_.query("LoadService", "", "max LoadAvg");
  ASSERT_EQ(results.size(), 2u);
  EXPECT_EQ(results[0].properties.at("Host").as_string(), "b");
}

TEST_F(TraderTest, QueryWithPreferencePutsMatchesFirst) {
  export_host("busy", 80.0);
  export_host("idle", 5.0);
  const auto results = trader_.query("LoadService", "", "with LoadAvg < 50");
  ASSERT_EQ(results.size(), 2u);
  EXPECT_EQ(results[0].properties.at("Host").as_string(), "idle");
  EXPECT_EQ(results[1].properties.at("Host").as_string(), "busy");
}

TEST_F(TraderTest, QueryFirstPreferenceKeepsRegistrationOrder) {
  export_host("one", 50.0);
  export_host("two", 10.0);
  const auto results = trader_.query("LoadService", "");
  ASSERT_EQ(results.size(), 2u);
  EXPECT_EQ(results[0].properties.at("Host").as_string(), "one");
}

TEST_F(TraderTest, QueryUnscorableOffersGoLast) {
  // An offer without the preference property sorts after scored ones.
  auto servant = FunctionServant::make("");
  const ObjectRef provider = orb_->register_servant(servant);
  PropertyMap props;
  props["Host"] = OfferedProperty(Value("noload"));
  props["Arch"] = OfferedProperty(Value("x86"));
  trader_.export_offer("LoadService", provider, props);
  export_host("scored", 25.0);
  const auto results = trader_.query("LoadService", "", "min LoadAvg");
  ASSERT_EQ(results.size(), 2u);
  EXPECT_EQ(results[0].properties.at("Host").as_string(), "scored");
  EXPECT_EQ(results[1].properties.at("Host").as_string(), "noload");
}

TEST_F(TraderTest, QueryRandomPreferenceIsDeterministicPerSeed) {
  for (int i = 0; i < 8; ++i) export_host("h" + std::to_string(i), i);
  auto orb2 = Orb::create();
  Trader other(orb2, {.name = "t-same-seed"});
  ServiceTypeDef type;
  type.name = "LoadService";
  type.properties = {{"Host", "string", PropertyDef::Mode::Normal}};
  other.types().add(type);
  // Same seed, same offers => same shuffle order.
  auto servant = FunctionServant::make("");
  for (int i = 0; i < 8; ++i) {
    PropertyMap props;
    props["Host"] = OfferedProperty(Value("h" + std::to_string(i)));
    other.export_offer("LoadService", orb2->register_servant(servant, "s" + std::to_string(i)),
                       props);
  }
  const auto r1 = trader_.query("LoadService", "", "random");
  const auto r2 = other.query("LoadService", "", "random");
  ASSERT_EQ(r1.size(), r2.size());
  for (size_t i = 0; i < r1.size(); ++i) {
    EXPECT_EQ(r1[i].properties.at("Host").as_string(), r2[i].properties.at("Host").as_string());
  }
}

TEST_F(TraderTest, ReturnCardLimitsResults) {
  for (int i = 0; i < 10; ++i) export_host("h" + std::to_string(i), i);
  LookupPolicies policies;
  policies.return_card = 3;
  EXPECT_EQ(trader_.query("LoadService", "", "", {}, policies).size(), 3u);
}

TEST_F(TraderTest, SearchCardLimitsConsideration) {
  for (int i = 0; i < 10; ++i) export_host("h" + std::to_string(i), i);
  LookupPolicies policies;
  policies.search_card = 4;
  // Only the first 4 registered offers are considered at all.
  const auto results = trader_.query("LoadService", "LoadAvg >= 0", "", {}, policies);
  EXPECT_EQ(results.size(), 4u);
}

TEST_F(TraderTest, DesiredPropertiesFilterReturnedProps) {
  export_host("node", 5.0);
  const auto results = trader_.query("LoadService", "", "", {"Host"});
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].properties.size(), 1u);
  EXPECT_EQ(results[0].properties.count("Host"), 1u);
}

// ---- dynamic properties ----------------------------------------------------

TEST_F(TraderTest, DynamicPropertyEvaluatedAtLookup) {
  auto load = std::make_shared<double>(75.0);
  auto evaluator = FunctionServant::make("DynamicPropEval");
  evaluator->on("evalDP", [load](const ValueList&) { return Value(*load); });
  const ObjectRef eval_ref = orb_->register_servant(evaluator);

  auto servant = FunctionServant::make("");
  const ObjectRef provider = orb_->register_servant(servant);
  PropertyMap props;
  props["Host"] = OfferedProperty(Value("dyn"));
  props["Arch"] = OfferedProperty(Value("x86"));
  props["LoadAvg"] = OfferedProperty(DynamicProperty{eval_ref, Value()});
  trader_.export_offer("LoadService", provider, props);

  EXPECT_EQ(trader_.query("LoadService", "LoadAvg < 50").size(), 0u);
  *load = 20.0;  // live value changes; next lookup sees it
  const auto results = trader_.query("LoadService", "LoadAvg < 50");
  ASSERT_EQ(results.size(), 1u);
  EXPECT_DOUBLE_EQ(results[0].properties.at("LoadAvg").as_number(), 20.0);
}

TEST_F(TraderTest, DynamicPropertyReceivesNameAndExtra) {
  ValueList captured;
  auto evaluator = FunctionServant::make("DynamicPropEval");
  auto capture = std::make_shared<ValueList>();
  evaluator->on("evalDP", [capture](const ValueList& args) {
    *capture = args;
    return Value(1.0);
  });
  const ObjectRef eval_ref = orb_->register_servant(evaluator);
  auto servant = FunctionServant::make("");
  PropertyMap props;
  props["Host"] = OfferedProperty(Value("h"));
  props["Arch"] = OfferedProperty(Value("x86"));
  props["LoadAvg"] = OfferedProperty(DynamicProperty{eval_ref, Value("extra-data")});
  trader_.export_offer("LoadService", orb_->register_servant(servant), props);
  trader_.query("LoadService", "LoadAvg > 0");
  ASSERT_EQ(capture->size(), 2u);
  EXPECT_EQ((*capture)[0].as_string(), "LoadAvg");
  EXPECT_EQ((*capture)[1].as_string(), "extra-data");
}

TEST_F(TraderTest, DynamicPropertyCachedWithinOneQuery) {
  auto calls = std::make_shared<int>(0);
  auto evaluator = FunctionServant::make("DynamicPropEval");
  evaluator->on("evalDP", [calls](const ValueList&) {
    ++*calls;
    return Value(10.0);
  });
  const ObjectRef eval_ref = orb_->register_servant(evaluator);
  auto servant = FunctionServant::make("");
  PropertyMap props;
  props["Host"] = OfferedProperty(Value("h"));
  props["Arch"] = OfferedProperty(Value("x86"));
  props["LoadAvg"] = OfferedProperty(DynamicProperty{eval_ref, Value()});
  trader_.export_offer("LoadService", orb_->register_servant(servant), props);
  // Constraint + min preference + returned props all touch LoadAvg.
  trader_.query("LoadService", "LoadAvg < 50", "min LoadAvg");
  EXPECT_EQ(*calls, 1) << "one evalDP per offer per query";
}

TEST_F(TraderTest, UseDynamicPropertiesPolicyOff) {
  auto evaluator = FunctionServant::make("DynamicPropEval");
  auto calls = std::make_shared<int>(0);
  evaluator->on("evalDP", [calls](const ValueList&) {
    ++*calls;
    return Value(10.0);
  });
  const ObjectRef eval_ref = orb_->register_servant(evaluator);
  auto servant = FunctionServant::make("");
  PropertyMap props;
  props["Host"] = OfferedProperty(Value("h"));
  props["Arch"] = OfferedProperty(Value("x86"));
  props["LoadAvg"] = OfferedProperty(DynamicProperty{eval_ref, Value()});
  trader_.export_offer("LoadService", orb_->register_servant(servant), props);
  LookupPolicies policies;
  policies.use_dynamic_properties = false;
  EXPECT_EQ(trader_.query("LoadService", "LoadAvg < 50", "", {}, policies).size(), 0u)
      << "dynamic property treated as undefined";
  EXPECT_EQ(*calls, 0);
}

TEST_F(TraderTest, FailingDynamicPropertyMeansUndefined) {
  auto evaluator = FunctionServant::make("DynamicPropEval");
  evaluator->on("evalDP", [](const ValueList&) -> Value { throw Error("down"); });
  const ObjectRef eval_ref = orb_->register_servant(evaluator);
  auto servant = FunctionServant::make("");
  PropertyMap props;
  props["Host"] = OfferedProperty(Value("h"));
  props["Arch"] = OfferedProperty(Value("x86"));
  props["LoadAvg"] = OfferedProperty(DynamicProperty{eval_ref, Value()});
  trader_.export_offer("LoadService", orb_->register_servant(servant), props);
  EXPECT_EQ(trader_.query("LoadService", "LoadAvg < 50").size(), 0u);
  EXPECT_EQ(trader_.query("LoadService", "not exist LoadAvg").size(), 1u);
}

// ---- federation -----------------------------------------------------------

TEST_F(TraderTest, FederatedQueryMergesRemoteOffers) {
  auto orb2 = Orb::create();
  Trader remote(orb2, {.name = "t2"});
  ServiceTypeDef type;
  type.name = "LoadService";
  type.properties = {{"LoadAvg", "number", PropertyDef::Mode::Normal},
                     {"Host", "string", PropertyDef::Mode::Normal}};
  remote.types().add(type);
  auto servant = FunctionServant::make("");
  PropertyMap props;
  props["Host"] = OfferedProperty(Value("remote-host"));
  props["LoadAvg"] = OfferedProperty(Value(5.0));
  remote.export_offer("LoadService", orb2->register_servant(servant), props);

  export_host("local-host", 10.0);
  trader_.add_link("to-t2", remote.lookup_ref());
  const auto results = trader_.query("LoadService", "LoadAvg < 50");
  ASSERT_EQ(results.size(), 2u);
  EXPECT_EQ(results[0].properties.at("Host").as_string(), "local-host");
  EXPECT_EQ(results[1].properties.at("Host").as_string(), "remote-host");
}

TEST_F(TraderTest, HopCountZeroStaysLocal) {
  auto orb2 = Orb::create();
  Trader remote(orb2, {.name = "t3"});
  ServiceTypeDef type;
  type.name = "LoadService";
  remote.types().add(type);
  auto servant = FunctionServant::make("");
  remote.export_offer("LoadService", orb2->register_servant(servant), {});
  trader_.add_link("to-t3", remote.lookup_ref());
  export_host("local", 1.0);
  LookupPolicies policies;
  policies.hop_count = 0;
  EXPECT_EQ(trader_.query("LoadService", "", "", {}, policies).size(), 1u);
}

TEST_F(TraderTest, LinkCyclesTerminate) {
  auto orb2 = Orb::create();
  Trader other(orb2, {.name = "t4"});
  ServiceTypeDef type;
  type.name = "LoadService";
  type.properties = {{"LoadAvg", "number", PropertyDef::Mode::Normal},
                     {"Host", "string", PropertyDef::Mode::Normal},
                     {"Arch", "string", PropertyDef::Mode::Normal}};
  other.types().add(type);
  trader_.add_link("a", other.lookup_ref());
  other.add_link("b", trader_.lookup_ref());
  export_host("only", 1.0);
  LookupPolicies policies;
  policies.hop_count = 3;
  const auto results = trader_.query("LoadService", "", "", {}, policies);
  EXPECT_EQ(results.size(), 1u) << "cycle bounded by hop_count, offer deduplicated";
}

TEST_F(TraderTest, DeadLinkIsSkipped) {
  trader_.add_link("dead", ObjectRef{"inproc://no-such-trader", "x", ""});
  export_host("local", 1.0);
  EXPECT_EQ(trader_.query("LoadService", "").size(), 1u);
}

// ---- remote access through servants -----------------------------------------

TEST_F(TraderTest, RemoteClientRoundtrip) {
  export_host("via-servant", 7.0);
  auto client_orb = Orb::create();
  TraderClient client(client_orb, trader_.lookup_ref(), trader_.register_ref());
  const auto results = client.query("LoadService", "LoadAvg < 10", "min LoadAvg");
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].properties.at("Host").as_string(), "via-servant");
  EXPECT_EQ(results[0].service_type, "LoadService");
  EXPECT_FALSE(results[0].provider.empty());
}

TEST_F(TraderTest, RemoteExportAndWithdraw) {
  auto client_orb = Orb::create();
  TraderClient client(client_orb, trader_.lookup_ref(), trader_.register_ref());
  auto servant = FunctionServant::make("");
  const ObjectRef provider = client_orb->register_servant(servant);
  PropertyMap props;
  props["Host"] = OfferedProperty(Value("remote-reg"));
  props["Arch"] = OfferedProperty(Value("riscv"));
  props["LoadAvg"] = OfferedProperty(Value(3.0));
  const std::string id = client.export_offer("LoadService", provider, props);
  EXPECT_EQ(trader_.offer_count(), 1u);
  client.modify(id, {{"LoadAvg", OfferedProperty(Value(8.0))}});
  EXPECT_DOUBLE_EQ(trader_.describe(id).properties.at("LoadAvg").static_value().as_number(),
                   8.0);
  client.withdraw(id);
  EXPECT_EQ(trader_.offer_count(), 0u);
}

TEST_F(TraderTest, RemoteExportOfDynamicProperty) {
  auto client_orb = Orb::create();
  auto evaluator = FunctionServant::make("DynamicPropEval");
  evaluator->on("evalDP", [](const ValueList&) { return Value(4.0); });
  const ObjectRef eval_ref = client_orb->register_servant(evaluator);
  TraderClient client(client_orb, trader_.lookup_ref(), trader_.register_ref());
  auto servant = FunctionServant::make("");
  PropertyMap props;
  props["Host"] = OfferedProperty(Value("h"));
  props["Arch"] = OfferedProperty(Value("x86"));
  props["LoadAvg"] = OfferedProperty(DynamicProperty{eval_ref, Value()});
  client.export_offer("LoadService", client_orb->register_servant(servant), props);
  const auto results = trader_.query("LoadService", "LoadAvg == 4");
  ASSERT_EQ(results.size(), 1u);
  EXPECT_DOUBLE_EQ(results[0].properties.at("LoadAvg").as_number(), 4.0);
}

// ---- Admin interface --------------------------------------------------

TEST_F(TraderTest, AdminClampsReturnCard) {
  for (int i = 0; i < 10; ++i) export_host("h" + std::to_string(i), i);
  TraderAdminSettings admin;
  admin.max_return_card = 4;
  trader_.set_admin(admin);
  LookupPolicies policies;
  policies.return_card = 100;  // importer asks for more than allowed
  EXPECT_EQ(trader_.query("LoadService", "", "", {}, policies).size(), 4u);
}

TEST_F(TraderTest, AdminClampsSearchCard) {
  for (int i = 0; i < 10; ++i) export_host("h" + std::to_string(i), i);
  TraderAdminSettings admin;
  admin.max_search_card = 3;
  trader_.set_admin(admin);
  EXPECT_EQ(trader_.query("LoadService", "LoadAvg >= 0").size(), 3u);
}

TEST_F(TraderTest, AdminDisablesDynamicProperties) {
  auto evaluator = FunctionServant::make("DynamicPropEval");
  auto calls = std::make_shared<int>(0);
  evaluator->on("evalDP", [calls](const ValueList&) {
    ++*calls;
    return Value(1.0);
  });
  const ObjectRef eval_ref = orb_->register_servant(evaluator);
  auto servant = FunctionServant::make("");
  PropertyMap props;
  props["Host"] = OfferedProperty(Value("h"));
  props["Arch"] = OfferedProperty(Value("x86"));
  props["LoadAvg"] = OfferedProperty(DynamicProperty{eval_ref, Value()});
  trader_.export_offer("LoadService", orb_->register_servant(servant), props);
  TraderAdminSettings admin;
  admin.supports_dynamic_properties = false;
  trader_.set_admin(admin);
  EXPECT_EQ(trader_.query("LoadService", "LoadAvg > 0").size(), 0u);
  EXPECT_EQ(*calls, 0) << "globally disabled: no evalDP callbacks";
}

TEST_F(TraderTest, AdminClampsHopCount) {
  auto orb2 = Orb::create();
  Trader remote(orb2, {.name = "t-admin-remote"});
  ServiceTypeDef type;
  type.name = "LoadService";
  remote.types().add(type);
  auto servant = FunctionServant::make("");
  remote.export_offer("LoadService", orb2->register_servant(servant), {});
  trader_.add_link("r", remote.lookup_ref());
  TraderAdminSettings admin;
  admin.max_hop_count = 0;  // federation disabled
  trader_.set_admin(admin);
  export_host("local", 1.0);
  LookupPolicies policies;
  policies.hop_count = 5;
  EXPECT_EQ(trader_.query("LoadService", "", "", {}, policies).size(), 1u)
      << "remote offer not consulted";
}

TEST_F(TraderTest, DynamicEvalCounter) {
  auto evaluator = FunctionServant::make("DynamicPropEval");
  evaluator->on("evalDP", [](const ValueList&) { return Value(1.0); });
  const ObjectRef eval_ref = orb_->register_servant(evaluator);
  auto servant = FunctionServant::make("");
  PropertyMap props;
  props["Host"] = OfferedProperty(Value("h"));
  props["Arch"] = OfferedProperty(Value("x86"));
  props["LoadAvg"] = OfferedProperty(DynamicProperty{eval_ref, Value()});
  trader_.export_offer("LoadService", orb_->register_servant(servant), props);
  const uint64_t before = trader_.dynamic_evals();
  trader_.query("LoadService", "LoadAvg > 0");
  EXPECT_EQ(trader_.dynamic_evals(), before + 1);
}

}  // namespace
}  // namespace adapt::trading
