// Interface repository tests: definitions, inheritance, IDL parsing.
#include "orb/interface_repo.h"

#include <gtest/gtest.h>

namespace adapt::orb {
namespace {

InterfaceDef simple_iface(const std::string& name,
                          std::vector<std::string> ops,
                          std::vector<std::string> bases = {}) {
  InterfaceDef def;
  def.name = name;
  def.bases = std::move(bases);
  for (const auto& op : ops) {
    OperationDef o;
    o.name = op;
    def.operations[op] = std::move(o);
  }
  return def;
}

TEST(InterfaceRepoTest, DefineAndFind) {
  InterfaceRepository repo;
  repo.define(simple_iface("Hello", {"hello"}));
  EXPECT_TRUE(repo.has("Hello"));
  EXPECT_FALSE(repo.has("Other"));
  const auto def = repo.find("Hello");
  ASSERT_TRUE(def.has_value());
  EXPECT_EQ(def->operations.count("hello"), 1u);
}

TEST(InterfaceRepoTest, RedefineReplaces) {
  InterfaceRepository repo;
  repo.define(simple_iface("I", {"a"}));
  repo.define(simple_iface("I", {"b"}));
  const auto def = repo.find("I");
  EXPECT_EQ(def->operations.count("a"), 0u);
  EXPECT_EQ(def->operations.count("b"), 1u);
}

TEST(InterfaceRepoTest, UnknownBaseRejected) {
  InterfaceRepository repo;
  EXPECT_THROW(repo.define(simple_iface("Derived", {}, {"NoSuchBase"})), Error);
}

TEST(InterfaceRepoTest, IsAWalksInheritance) {
  InterfaceRepository repo;
  repo.define(simple_iface("A", {"opA"}));
  repo.define(simple_iface("B", {"opB"}, {"A"}));
  repo.define(simple_iface("C", {"opC"}, {"B"}));
  EXPECT_TRUE(repo.is_a("C", "C"));
  EXPECT_TRUE(repo.is_a("C", "B"));
  EXPECT_TRUE(repo.is_a("C", "A"));
  EXPECT_FALSE(repo.is_a("A", "C"));
  EXPECT_FALSE(repo.is_a("X", "A"));
}

TEST(InterfaceRepoTest, MultipleInheritance) {
  InterfaceRepository repo;
  repo.define(simple_iface("Left", {"l"}));
  repo.define(simple_iface("Right", {"r"}));
  repo.define(simple_iface("Both", {"b"}, {"Left", "Right"}));
  EXPECT_TRUE(repo.is_a("Both", "Left"));
  EXPECT_TRUE(repo.is_a("Both", "Right"));
  EXPECT_TRUE(repo.find_operation("Both", "l").has_value());
  EXPECT_TRUE(repo.find_operation("Both", "r").has_value());
}

TEST(InterfaceRepoTest, FindOperationWalksBases) {
  InterfaceRepository repo;
  repo.define(simple_iface("Base", {"inherited"}));
  repo.define(simple_iface("Derived", {"own"}, {"Base"}));
  EXPECT_TRUE(repo.find_operation("Derived", "own").has_value());
  EXPECT_TRUE(repo.find_operation("Derived", "inherited").has_value());
  EXPECT_FALSE(repo.find_operation("Derived", "missing").has_value());
  EXPECT_FALSE(repo.find_operation("NoIface", "x").has_value());
}

TEST(InterfaceRepoTest, List) {
  InterfaceRepository repo;
  repo.define(simple_iface("B", {}));
  repo.define(simple_iface("A", {}));
  const auto names = repo.list();
  ASSERT_EQ(names.size(), 2u);
  EXPECT_EQ(names[0], "A");
  EXPECT_EQ(names[1], "B");
}

// ---- IDL parsing (the paper's Fig. 1 / Fig. 2 interfaces) ----------------

TEST(InterfaceRepoIdlTest, PaperFig1AspectsManager) {
  InterfaceRepository repo;
  const auto defined = repo.define_idl(R"(
    interface AspectsManager {
      any getAspectValue(in string name);
      table definedAspects();
      void defineAspect(in string name, in string updatef);
    };
  )");
  ASSERT_EQ(defined.size(), 1u);
  EXPECT_EQ(defined[0], "AspectsManager");
  const auto op = repo.find_operation("AspectsManager", "defineAspect");
  ASSERT_TRUE(op.has_value());
  ASSERT_EQ(op->params.size(), 2u);
  EXPECT_EQ(op->params[0].name, "name");
  EXPECT_EQ(op->params[0].type, "string");
  EXPECT_FALSE(op->oneway);
}

TEST(InterfaceRepoIdlTest, PaperFig2EventMonitor) {
  InterfaceRepository repo;
  repo.define_idl(R"(
    interface EventObserver {
      oneway void notifyEvent(in string evid);
    };
    interface BasicMonitor {
      any getvalue();
      void setvalue(in any v);
    };
    interface EventMonitor : BasicMonitor {
      string attachEventObserver(in object obj, in string evid, in string notifyf);
      void detachEventObserver(in string id);
    };
  )");
  EXPECT_TRUE(repo.is_a("EventMonitor", "BasicMonitor"));
  const auto notify = repo.find_operation("EventObserver", "notifyEvent");
  ASSERT_TRUE(notify.has_value());
  EXPECT_TRUE(notify->oneway);
  EXPECT_TRUE(repo.find_operation("EventMonitor", "getvalue").has_value())
      << "inherited operation reachable";
}

TEST(InterfaceRepoIdlTest, CommentsAndWhitespace) {
  InterfaceRepository repo;
  repo.define_idl(R"(
    // a leading comment
    interface Spaced {
      void op();  // trailing comment
    };
  )");
  EXPECT_TRUE(repo.has("Spaced"));
}

TEST(InterfaceRepoIdlTest, SyntaxErrors) {
  InterfaceRepository repo;
  EXPECT_THROW(repo.define_idl("iface Bad {}"), Error);
  EXPECT_THROW(repo.define_idl("interface { void op(); };"), Error);
  EXPECT_THROW(repo.define_idl("interface I { void op() };"), Error)
      << "missing semicolon after operation";
  EXPECT_THROW(repo.define_idl("interface I : Unknown { };"), Error);
}

TEST(InterfaceRepoIdlTest, MultipleParamsAndDirections) {
  InterfaceRepository repo;
  repo.define_idl("interface M { number mix(in number a, string b, in table c); };");
  const auto op = repo.find_operation("M", "mix");
  ASSERT_TRUE(op.has_value());
  ASSERT_EQ(op->params.size(), 3u);
  EXPECT_EQ(op->params[1].name, "b");
  EXPECT_EQ(op->params[2].type, "table");
  EXPECT_EQ(op->result_type, "number");
}

}  // namespace
}  // namespace adapt::orb
