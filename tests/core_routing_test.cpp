// Per-operation component choice and alternative methods — the two SIV-A
// smart-proxy behaviors beyond plain substitution: "choice of different
// components for different requested operations, use of alternative
// methods".
#include <gtest/gtest.h>

#include "core/infrastructure.h"

namespace adapt::core {
namespace {

using orb::FunctionServant;

class RoutingTest : public ::testing::Test {
 protected:
  RoutingTest() {
    trading::ServiceTypeDef type;
    type.name = "Mixed";
    type.properties = {{"Tier", "string", trading::PropertyDef::Mode::Normal}};
    infra_.trader().types().add(type);
  }

  /// Deploys a server advertising a Tier property; ops echo the host name.
  ObjectRef deploy(const std::string& name, const std::string& tier,
                   const std::vector<std::string>& ops = {"whoami"}) {
    infra_.make_host(name);
    auto servant = FunctionServant::make("Mixed");
    for (const auto& op : ops) {
      servant->on(op, [name](const ValueList&) { return Value(name); });
    }
    const ObjectRef provider = infra_.host_orb(name)->register_servant(servant, "svc");
    auto agent = infra_.make_agent(name);
    trading::PropertyMap props;
    props["Tier"] = trading::OfferedProperty(Value(tier));
    agent->export_offer("Mixed", provider, props);
    return provider;
  }

  SmartProxyPtr make_proxy() {
    SmartProxyConfig cfg;
    cfg.service_type = "Mixed";
    cfg.monitor_property = "";
    return infra_.make_proxy(cfg);
  }

  Infrastructure infra_{InfrastructureOptions{.name = "rt" + std::to_string(counter_++)}};
  static int counter_;
};

int RoutingTest::counter_ = 0;

TEST_F(RoutingTest, RoutedOperationUsesItsOwnComponent) {
  deploy("cheap", "standard", {"whoami", "archive"});
  deploy("fast", "premium", {"whoami", "archive"});
  auto proxy = make_proxy();
  proxy->route_operation("archive", "Tier == 'premium'");
  // Default ops go to the first offer; "archive" goes to the premium tier.
  EXPECT_EQ(proxy->invoke("whoami").as_string(), "cheap");
  EXPECT_EQ(proxy->invoke("archive").as_string(), "fast");
  EXPECT_EQ(proxy->invoke("whoami").as_string(), "cheap") << "main binding untouched";
  EXPECT_EQ(proxy->route_target("archive").endpoint, infra_.host_orb("fast")->endpoint());
}

TEST_F(RoutingTest, RouteCachedAcrossCalls) {
  deploy("cheap", "standard");
  deploy("fast", "premium");
  auto proxy = make_proxy();
  proxy->route_operation("whoami", "Tier == 'premium'");
  const uint64_t before = infra_.trader().dynamic_evals();
  proxy->invoke("whoami");
  const ObjectRef first = proxy->route_target("whoami");
  proxy->invoke("whoami");
  proxy->invoke("whoami");
  EXPECT_EQ(proxy->route_target("whoami"), first) << "selection cached, not re-queried";
  (void)before;
}

TEST_F(RoutingTest, RoutedOperationFailsOver) {
  deploy("p1", "premium");
  deploy("p2", "premium");
  auto proxy = make_proxy();
  proxy->route_operation("whoami", "Tier == 'premium'");
  const std::string first = proxy->invoke("whoami").as_string();
  infra_.host_orb(first)->unregister_servant("svc");
  const std::string second = proxy->invoke("whoami").as_string();
  EXPECT_NE(second, first);
}

TEST_F(RoutingTest, RouteWithNoMatchThrows) {
  deploy("cheap", "standard");
  auto proxy = make_proxy();
  proxy->route_operation("whoami", "Tier == 'gold'");
  EXPECT_THROW(proxy->invoke("whoami"), NoComponentAvailable);
}

TEST_F(RoutingTest, ClearRoutesRestoresDefaultBinding) {
  deploy("cheap", "standard");
  deploy("fast", "premium");
  auto proxy = make_proxy();
  proxy->route_operation("whoami", "Tier == 'premium'");
  EXPECT_EQ(proxy->invoke("whoami").as_string(), "fast");
  proxy->clear_operation_routes();
  EXPECT_EQ(proxy->invoke("whoami").as_string(), "cheap");
}

TEST_F(RoutingTest, RouteWithOwnPreference) {
  trading::ServiceTypeDef type;
  type.name = "Ranked";
  type.properties = {{"Rank", "number", trading::PropertyDef::Mode::Normal}};
  infra_.trader().types().add(type);
  for (int i = 1; i <= 3; ++i) {
    const std::string name = "r" + std::to_string(i);
    infra_.make_host(name);
    auto servant = FunctionServant::make("Ranked");
    servant->on("whoami", [name](const ValueList&) { return Value(name); });
    const ObjectRef provider = infra_.host_orb(name)->register_servant(servant);
    trading::PropertyMap props;
    props["Rank"] = trading::OfferedProperty(Value(static_cast<double>(i)));
    infra_.make_agent(name)->export_offer("Ranked", provider, props);
  }
  SmartProxyConfig cfg;
  cfg.service_type = "Ranked";
  cfg.monitor_property = "";
  auto proxy = infra_.make_proxy(cfg);
  proxy->route_operation("whoami", "", "max Rank");
  EXPECT_EQ(proxy->invoke("whoami").as_string(), "r3");
}

// ---- alternative methods --------------------------------------------------

TEST_F(RoutingTest, AlternativeMethodUsedWhenMissing) {
  // Old interface: only "greet". Client code still calls "hello".
  deploy("legacy", "standard", {"greet"});
  auto proxy = make_proxy();
  proxy->add_method_alternative("hello", "greet");
  EXPECT_EQ(proxy->invoke("hello").as_string(), "legacy");
}

TEST_F(RoutingTest, PrimaryMethodPreferredWhenPresent) {
  infra_.make_host("modern");
  auto servant = FunctionServant::make("Mixed");
  servant->on("hello", [](const ValueList&) { return Value("primary"); });
  servant->on("greet", [](const ValueList&) { return Value("alternative"); });
  const ObjectRef provider = infra_.host_orb("modern")->register_servant(servant);
  infra_.make_agent("modern")->export_offer("Mixed", provider, {});
  auto proxy = make_proxy();
  proxy->add_method_alternative("hello", "greet");
  EXPECT_EQ(proxy->invoke("hello").as_string(), "primary");
}

TEST_F(RoutingTest, AlternativeChainsFollowed) {
  deploy("oldest", "standard", {"salute"});
  auto proxy = make_proxy();
  proxy->add_method_alternative("hello", "greet");
  proxy->add_method_alternative("greet", "salute");
  EXPECT_EQ(proxy->invoke("hello").as_string(), "oldest");
}

TEST_F(RoutingTest, AlternativeCycleTerminates) {
  deploy("none", "standard", {"whoami"});
  auto proxy = make_proxy();
  proxy->add_method_alternative("a", "b");
  proxy->add_method_alternative("b", "a");
  EXPECT_THROW(proxy->invoke("a"), orb::BadOperation);
}

TEST_F(RoutingTest, NoAlternativeStillBadOperation) {
  deploy("plain", "standard");
  auto proxy = make_proxy();
  EXPECT_THROW(proxy->invoke("unknown_op"), orb::BadOperation);
}

TEST_F(RoutingTest, AlternativesApplyToRoutedOperations) {
  deploy("preleg", "premium", {"greet"});
  auto proxy = make_proxy();
  proxy->route_operation("hello", "Tier == 'premium'");
  proxy->add_method_alternative("hello", "greet");
  EXPECT_EQ(proxy->invoke("hello").as_string(), "preleg");
}

}  // namespace
}  // namespace adapt::core
