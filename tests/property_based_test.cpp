// Property-based tests: randomly generated programs/expressions evaluated
// against independently computed oracles.
//
//  * constraint language: random boolean/arithmetic trees — parse(render(t))
//    must evaluate to the oracle value, including OMG undefined-property
//    semantics;
//  * Luma: random arithmetic expressions and random table programs match
//    C++ oracles;
//  * wire format: random value roundtrip lives in orb_wire_test.cpp.
#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <optional>
#include <random>
#include <sstream>

#include "script/engine.h"
#include "trading/constraint.h"

namespace adapt {
namespace {

// ---- constraint-language PBT ---------------------------------------------

struct NumExpr {
  std::string text;
  std::optional<double> value;  // nullopt = touched an undefined property
};

struct BoolExpr {
  std::string text;
  std::optional<bool> value;
};

class ConstraintGen {
 public:
  explicit ConstraintGen(uint32_t seed) : rng_(seed) {
    props_["LoadAvg"] = 35.0;
    props_["Rank"] = 7.0;
    props_["Zero"] = 0.0;
    props_["Negative"] = -12.5;
  }

  trading::PropertyLookup lookup() const {
    return [this](const std::string& name) -> std::optional<Value> {
      const auto it = props_.find(name);
      if (it == props_.end()) return std::nullopt;
      return Value(it->second);
    };
  }

  NumExpr gen_num(int depth) {
    switch (pick(depth <= 0 ? 2 : 4)) {
      case 0: {  // literal
        const double v = literal();
        return {render(v), v};
      }
      case 1: {  // property (sometimes undefined)
        if (pick(4) == 0) return {"Missing", std::nullopt};
        auto it = props_.begin();
        std::advance(it, pick(static_cast<int>(props_.size())));
        return {it->first, it->second};
      }
      case 2: {  // unary minus
        NumExpr inner = gen_num(depth - 1);
        return {"-(" + inner.text + ")",
                inner.value ? std::optional<double>(-*inner.value) : std::nullopt};
      }
      default: {  // binary arithmetic
        NumExpr a = gen_num(depth - 1);
        NumExpr b = gen_num(depth - 1);
        const char* ops[] = {"+", "-", "*", "/"};
        const int op = pick(4);
        std::optional<double> v;
        if (a.value && b.value) {
          switch (op) {
            case 0: v = *a.value + *b.value; break;
            case 1: v = *a.value - *b.value; break;
            case 2: v = *a.value * *b.value; break;
            default: v = *a.value / *b.value; break;
          }
        }
        return {"(" + a.text + " " + ops[op] + " " + b.text + ")", v};
      }
    }
  }

  BoolExpr gen_bool(int depth) {
    switch (pick(depth <= 0 ? 2 : 5)) {
      case 0:
        return {pick(2) == 0 ? "TRUE" : "FALSE", pick_last_ == 0};
      case 1: {  // exist
        const bool defined = pick(2) == 0;
        return {std::string("exist ") + (defined ? "LoadAvg" : "Missing"), defined};
      }
      case 2: {  // comparison
        NumExpr a = gen_num(depth - 1);
        NumExpr b = gen_num(depth - 1);
        const char* ops[] = {"==", "!=", "<", "<=", ">", ">="};
        const int op = pick(6);
        std::optional<bool> v;
        if (a.value && b.value) {
          switch (op) {
            case 0: v = *a.value == *b.value; break;
            case 1: v = *a.value != *b.value; break;
            case 2: v = *a.value < *b.value; break;
            case 3: v = *a.value <= *b.value; break;
            case 4: v = *a.value > *b.value; break;
            default: v = *a.value >= *b.value; break;
          }
        }
        return {"(" + a.text + " " + ops[op] + " " + b.text + ")", v};
      }
      case 3: {  // not
        BoolExpr inner = gen_bool(depth - 1);
        return {"not (" + inner.text + ")",
                inner.value ? std::optional<bool>(!*inner.value) : std::nullopt};
      }
      default: {  // and / or with OMG undefined semantics + short-circuit
        BoolExpr a = gen_bool(depth - 1);
        BoolExpr b = gen_bool(depth - 1);
        const bool is_and = pick(2) == 0;
        std::optional<bool> v;
        if (is_and) {
          // undefined anywhere -> undefined, except a defined-false lhs
          // short-circuits to false.
          if (a.value && !*a.value) {
            v = false;
          } else if (a.value && b.value) {
            v = *a.value && *b.value;
          }
        } else {
          if (a.value && *a.value) {
            v = true;
          } else if (a.value && b.value) {
            v = *a.value || *b.value;
          }
        }
        return {"(" + a.text + (is_and ? " and " : " or ") + b.text + ")", v};
      }
    }
  }

 private:
  int pick(int n) { return pick_last_ = static_cast<int>(rng_() % static_cast<uint32_t>(n)); }
  double literal() {
    // small integers and halves keep comparisons exact
    return static_cast<double>(static_cast<int>(rng_() % 41) - 20) / 2.0;
  }
  static std::string render(double v) {
    std::ostringstream os;
    if (v < 0) {
      os << "(-" << -v << ")";
    } else {
      os << v;
    }
    return os.str();
  }

  std::mt19937 rng_;
  std::map<std::string, double> props_;
  int pick_last_ = 0;
};

TEST(ConstraintPropertyTest, RandomBooleanTreesMatchOracle) {
  // Oracle nullopt (undefined touched) must evaluate to "no match".
  for (uint32_t seed = 1; seed <= 400; ++seed) {
    ConstraintGen gen(seed);
    const BoolExpr expr = gen.gen_bool(4);
    SCOPED_TRACE("seed " + std::to_string(seed) + ": " + expr.text);
    const trading::Constraint c = trading::Constraint::parse(expr.text);
    const bool expected = expr.value.value_or(false);
    EXPECT_EQ(c.matches(gen.lookup()), expected);
  }
}

TEST(ConstraintPropertyTest, RandomNumericTreesMatchOracle) {
  for (uint32_t seed = 1; seed <= 400; ++seed) {
    ConstraintGen gen(seed + 10000);
    const NumExpr expr = gen.gen_num(4);
    SCOPED_TRACE("seed " + std::to_string(seed) + ": " + expr.text);
    const trading::Constraint c = trading::Constraint::parse(expr.text);
    const auto got = c.evaluate_numeric(gen.lookup());
    if (!expr.value || std::isnan(*expr.value)) {
      if (got) {
        EXPECT_TRUE(std::isnan(*got)) << *got;
      }
    } else {
      ASSERT_TRUE(got.has_value());
      if (std::isinf(*expr.value)) {
        EXPECT_EQ(*got, *expr.value);
      } else {
        EXPECT_NEAR(*got, *expr.value, std::abs(*expr.value) * 1e-9 + 1e-9);
      }
    }
  }
}

// ---- Luma arithmetic PBT ------------------------------------------------

struct LumaExpr {
  std::string text;
  double value;
};

class LumaGen {
 public:
  explicit LumaGen(uint32_t seed) : rng_(seed) {}

  LumaExpr gen(int depth) {
    if (depth <= 0 || pick(3) == 0) {
      const double v = static_cast<double>(static_cast<int>(rng_() % 19) + 1);
      std::ostringstream os;
      os << v;
      return {os.str(), v};
    }
    LumaExpr a = gen(depth - 1);
    LumaExpr b = gen(depth - 1);
    switch (pick(4)) {
      case 0: return {"(" + a.text + " + " + b.text + ")", a.value + b.value};
      case 1: return {"(" + a.text + " - " + b.text + ")", a.value - b.value};
      case 2: return {"(" + a.text + " * " + b.text + ")", a.value * b.value};
      default: return {"(" + a.text + " / " + b.text + ")", a.value / b.value};
    }
  }

 private:
  int pick(int n) { return static_cast<int>(rng_() % static_cast<uint32_t>(n)); }
  std::mt19937 rng_;
};

TEST(LumaPropertyTest, RandomArithmeticMatchesNative) {
  script::ScriptEngine eng;
  for (uint32_t seed = 1; seed <= 300; ++seed) {
    LumaGen gen(seed);
    const LumaExpr expr = gen.gen(5);
    SCOPED_TRACE("seed " + std::to_string(seed) + ": " + expr.text);
    const Value got = eng.eval1("return " + expr.text);
    if (std::isnan(expr.value)) {
      EXPECT_TRUE(std::isnan(got.as_number()));
    } else if (std::isinf(expr.value)) {
      EXPECT_EQ(got.as_number(), expr.value);
    } else {
      EXPECT_NEAR(got.as_number(), expr.value, std::abs(expr.value) * 1e-12 + 1e-12);
    }
  }
}

TEST(LumaPropertyTest, RandomTableProgramsPreserveSum) {
  // Build a random array, then shuffle it with random inserts/removes that
  // preserve the multiset; Luma's computed sum must equal the oracle's.
  std::mt19937 rng(7);
  script::ScriptEngine eng;
  for (int trial = 0; trial < 100; ++trial) {
    const int n = 1 + static_cast<int>(rng() % 20);
    double expected = 0;
    std::ostringstream code;
    code << "local t = {} ";
    for (int i = 0; i < n; ++i) {
      const int v = static_cast<int>(rng() % 100);
      expected += v;
      if (rng() % 2 == 0) {
        code << "table.insert(t, " << v << ") ";
      } else {
        code << "table.insert(t, 1, " << v << ") ";
      }
    }
    // A few rotations: remove from one end, insert at the other.
    for (int i = 0; i < 5; ++i) {
      code << "local x = table.remove(t, 1) table.insert(t, x) ";
    }
    code << "local s = 0 for i, v in ipairs(t) do s = s + v end return s, #t";
    ValueList out = eng.eval(code.str());
    ASSERT_EQ(out.size(), 2u);
    EXPECT_DOUBLE_EQ(out[0].as_number(), expected) << code.str();
    EXPECT_DOUBLE_EQ(out[1].as_number(), n);
  }
}

TEST(LumaPropertyTest, RandomTokenSoupNeverCrashes) {
  // Robustness property: arbitrary token sequences either parse+run or
  // raise a typed adapt error — never crash, hang, or leak past pcall.
  const char* tokens[] = {"if", "then", "else", "end", "while", "do", "function",
                          "local", "return", "break", "for", "in", "repeat", "until",
                          "and", "or", "not", "nil", "true", "false",
                          "x", "y", "print", "1", "2.5", "'s'", "\"t\"",
                          "+", "-", "*", "/", "%", "==", "~=", "<", ">", "<=", ">=",
                          "=", "(", ")", "{", "}", "[", "]", ",", ";", ":", ".", "..",
                          "...", "#"};
  std::mt19937 rng(1234);
  script::ScriptEngine eng;
  int parsed_ok = 0;
  for (int trial = 0; trial < 500; ++trial) {
    const int len = 1 + static_cast<int>(rng() % 24);
    std::string program;
    for (int i = 0; i < len; ++i) {
      program += tokens[rng() % std::size(tokens)];
      program += ' ';
    }
    // Bias ~1/8 of trials toward valid prefixes so some soups do run.
    if (trial % 8 == 0) program = "x = 1 " + program;
    try {
      eng.eval(program, "fuzz");
      ++parsed_ok;
    } catch (const Error&) {
      // expected for most soups
    }
  }
  // The engine survived 500 soups; that's the property under test. The
  // parsed_ok counter only documents that some inputs were valid.
  EXPECT_GE(parsed_ok, 0);
}

TEST(ConstraintPropertyTest, RandomConstraintSoupNeverCrashes) {
  const char* tokens[] = {"and", "or", "not", "exist", "in", "TRUE", "FALSE",
                          "LoadAvg", "Missing", "1", "2.5", "'s'",
                          "+", "-", "*", "/", "==", "!=", "<", ">", "<=", ">=",
                          "~", "(", ")"};
  std::mt19937 rng(77);
  auto props = [](const std::string& name) -> std::optional<Value> {
    if (name == "LoadAvg") return Value(10.0);
    return std::nullopt;
  };
  for (int trial = 0; trial < 500; ++trial) {
    const int len = 1 + static_cast<int>(rng() % 16);
    std::string text;
    for (int i = 0; i < len; ++i) {
      text += tokens[rng() % std::size(tokens)];
      text += ' ';
    }
    try {
      const trading::Constraint c = trading::Constraint::parse(text);
      (void)c.matches(props);
      (void)c.evaluate_numeric(props);
    } catch (const trading::IllegalConstraint&) {
      // expected for most soups
    }
  }
  SUCCEED();
}

TEST(LumaPropertyTest, SortProducesOrderedPermutation) {
  std::mt19937 rng(21);
  script::ScriptEngine eng;
  for (int trial = 0; trial < 60; ++trial) {
    const int n = 1 + static_cast<int>(rng() % 30);
    std::ostringstream code;
    double sum = 0;
    code << "local t = {";
    for (int i = 0; i < n; ++i) {
      const int v = static_cast<int>(rng() % 1000);
      sum += v;
      code << v << ",";
    }
    code << "} table.sort(t) ";
    code << "local ok = true local s = 0 ";
    code << "for i, v in ipairs(t) do s = s + v if i > 1 and t[i-1] > v then ok = false end end ";
    code << "return ok, s, #t";
    ValueList out = eng.eval(code.str());
    EXPECT_TRUE(out.at(0).as_bool());
    EXPECT_DOUBLE_EQ(out.at(1).as_number(), sum);
    EXPECT_DOUBLE_EQ(out.at(2).as_number(), n);
  }
}

}  // namespace
}  // namespace adapt
