// End-to-end integration of the whole architecture (paper Fig. 6): hosts,
// agents, monitors, trader with dynamic properties, smart proxies with
// script strategies — the SV load-sharing system, plus a TCP variant.
#include <gtest/gtest.h>

#include "core/baseline_proxy.h"
#include "core/infrastructure.h"
#include "core/smart_proxy.h"
#include "sim/workload.h"

namespace adapt::core {
namespace {

using orb::FunctionServant;

constexpr const char* kLoadIncreasePredicate = R"(function(observer, value, monitor)
  local incr
  incr = monitor:getAspectValue("increasing")
  return value[1] > 50 and incr == "yes"
end)";

class IntegrationTest : public ::testing::Test {
 protected:
  IntegrationTest() {
    trading::ServiceTypeDef type;
    type.name = "HelloService";
    type.properties = {{"LoadAvg", "number", trading::PropertyDef::Mode::Normal},
                       {"LoadAvgIncreasing", "string", trading::PropertyDef::Mode::Normal},
                       {"LoadAvgMonitor", "object", trading::PropertyDef::Mode::Normal},
                       {"Host", "string", trading::PropertyDef::Mode::Normal}};
    infra_.trader().types().add(type);
  }

  /// Deploys a hello server that records its work on the host.
  void deploy(const std::string& name, double work_per_call = 0.05) {
    auto servant = FunctionServant::make("Hello");
    auto host = infra_.make_host(name);
    servant->on("hello", [host, work_per_call](const ValueList&) {
      host->record_work(work_per_call);
      return Value();
    });
    servant->on("whoami", [name](const ValueList&) { return Value(name); });
    const ObjectRef provider = infra_.host_orb(name)->register_servant(servant);
    auto agent = infra_.make_agent(name);
    auto mon = agent->create_load_monitor(host);
    agent->export_with_load("HelloService", provider, mon);
  }

  SmartProxyPtr make_adaptive_proxy() {
    SmartProxyConfig cfg;
    cfg.service_type = "HelloService";
    cfg.constraint = "LoadAvg < 50 and LoadAvgIncreasing == 'no'";
    cfg.preference = "min LoadAvg";
    auto proxy = infra_.make_proxy(cfg);
    proxy->add_interest("LoadIncrease", kLoadIncreasePredicate);
    proxy->set_strategy("LoadIncrease", [](SmartProxy& p) { p.select(); });
    return proxy;
  }

  Infrastructure infra_{InfrastructureOptions{.name = "it" + std::to_string(counter_++)}};
  static int counter_;
};

int IntegrationTest::counter_ = 0;

TEST_F(IntegrationTest, PaperScenarioClientMigratesUnderLoad) {
  // Three servers; the client binds the least loaded; a load spike on its
  // host drives it elsewhere; when the spike ends it can come back.
  deploy("alpha");
  deploy("beta");
  deploy("gamma");
  infra_.host("beta")->set_background_jobs(10.0);
  infra_.host("gamma")->set_background_jobs(20.0);
  infra_.run_for(900.0);

  auto proxy = make_adaptive_proxy();
  auto client = sim::ClosedLoopClient(infra_.timers(), [&] { proxy->invoke("hello"); }, 5.0);
  client.start();
  infra_.run_for(60.0);
  EXPECT_EQ(proxy->invoke("whoami").as_string(), "alpha");

  // Spike on alpha pushes its 1-min load far beyond 50 and the proxy away.
  infra_.host("alpha")->set_background_jobs(120.0);
  infra_.run_for(600.0);
  EXPECT_EQ(proxy->invoke("whoami").as_string(), "beta")
      << "migrated to the least-loaded alternative";

  // Spike ends; alpha cools down; a later LoadIncrease on beta sends the
  // client to the best server again.
  infra_.host("alpha")->set_background_jobs(0.0);
  infra_.host("beta")->add_background_jobs(100.0);
  infra_.run_for(900.0);
  EXPECT_EQ(proxy->invoke("whoami").as_string(), "alpha");
  EXPECT_GE(proxy->rebinds(), 3u);
  client.stop();
}

TEST_F(IntegrationTest, TwoClientsSpreadAcrossServers) {
  deploy("s1");
  deploy("s2");
  auto p1 = make_adaptive_proxy();
  auto p2 = make_adaptive_proxy();
  ASSERT_TRUE(p1->select());
  // p1's requests add induced load to s1... but lightly; tie-break sends
  // both to s1 initially.
  infra_.run_for(300.0);
  ASSERT_TRUE(p2->select());
  // Both clients hammer away; heavy background load lands on s1.
  infra_.host("s1")->set_background_jobs(100.0);
  infra_.run_for(600.0);
  p1->invoke("hello");
  p2->invoke("hello");
  EXPECT_EQ(p1->invoke("whoami").as_string(), "s2");
  EXPECT_EQ(p2->invoke("whoami").as_string(), "s2");
}

TEST_F(IntegrationTest, MonitorsKeepTraderPropertiesLive) {
  deploy("live");
  infra_.host("live")->set_background_jobs(42.0);
  infra_.run_for(900.0);
  const auto offers = infra_.trader().query("HelloService", "");
  ASSERT_EQ(offers.size(), 1u);
  EXPECT_NEAR(offers[0].properties.at("LoadAvg").as_number(), 42.0, 1.0);
}

TEST_F(IntegrationTest, ReconfigurationTransparentToFunctionalCode) {
  // The paper's claim (SV): the same adaptation code serves different
  // functional interfaces. Deploy an adder service with the same agent
  // machinery; the strategy code does not change.
  trading::ServiceTypeDef type;
  type.name = "AdderService";
  infra_.trader().types().add(type);
  for (const std::string name : {"add-1", "add-2"}) {
    auto servant = FunctionServant::make("Adder");
    servant->on("add", [](const ValueList& a) {
      return Value(a.at(0).as_number() + a.at(1).as_number());
    });
    servant->on("whoami", [name](const ValueList&) { return Value(name); });
    infra_.deploy_server(name, "AdderService", servant);
  }
  SmartProxyConfig cfg;
  cfg.service_type = "AdderService";
  cfg.constraint = "LoadAvg < 50 and LoadAvgIncreasing == 'no'";
  cfg.preference = "min LoadAvg";
  auto proxy = infra_.make_proxy(cfg);
  proxy->add_interest("LoadIncrease", kLoadIncreasePredicate);
  proxy->set_strategy("LoadIncrease", [](SmartProxy& p) { p.select(); });

  EXPECT_DOUBLE_EQ(proxy->invoke("add", {Value(40.0), Value(2.0)}).as_number(), 42.0);
  EXPECT_EQ(proxy->invoke("whoami").as_string(), "add-1");
  infra_.host("add-1")->set_background_jobs(150.0);
  infra_.run_for(600.0);
  EXPECT_DOUBLE_EQ(proxy->invoke("add", {Value(1.0), Value(1.0)}).as_number(), 2.0);
  EXPECT_EQ(proxy->invoke("whoami").as_string(), "add-2");
}

TEST_F(IntegrationTest, AdaptiveBeatsStaticUnderShiftingLoad) {
  // The qualitative claim behind bench_load_sharing (E1), as a test.
  deploy("m1", 0.2);
  deploy("m2", 0.2);
  auto adaptive = make_adaptive_proxy();
  StaticSelectionProxy static_proxy(infra_.make_orb("static-cli"), infra_.lookup_ref(),
                                    "HelloService", "", "min LoadAvg");
  ASSERT_TRUE(adaptive->select());
  ASSERT_TRUE(static_proxy.select());

  sim::Stats adaptive_latency;
  sim::Stats static_latency;
  auto measure = [&](auto& proxy, sim::Stats& stats, const std::string& who) {
    const std::string host = proxy.invoke("whoami").as_string();
    stats.add(infra_.host(host)->response_time(0.05));
    (void)who;
  };
  sim::ClosedLoopClient ca(infra_.timers(),
                           [&] { measure(*adaptive, adaptive_latency, "a"); }, 10.0);
  sim::ClosedLoopClient cs(infra_.timers(),
                           [&] { measure(static_proxy, static_latency, "s"); }, 10.0);
  ca.start();
  cs.start();
  // Phase 1: m1 fine. Phase 2: m1 overloaded for a long stretch.
  infra_.run_for(300.0);
  infra_.host("m1")->set_background_jobs(150.0);
  infra_.run_for(1800.0);
  ca.stop();
  cs.stop();
  EXPECT_LT(adaptive_latency.mean(), static_latency.mean() * 0.5)
      << "adaptive proxy escapes the overloaded host; static rides it out";
}

TEST_F(IntegrationTest, FullStackOverTcp) {
  // Same architecture with every ORB listening on TCP: references carried
  // through the trader are tcp:// refs and all calls cross real sockets.
  Infrastructure tcp_infra{InfrastructureOptions{.simulated_time = true,
                                                 .tcp = true,
                                                 .name = "it-tcp"}};
  trading::ServiceTypeDef type;
  type.name = "HelloService";
  tcp_infra.trader().types().add(type);
  auto servant = FunctionServant::make("Hello");
  servant->on("whoami", [](const ValueList&) { return Value("tcp-server"); });
  const ObjectRef provider = tcp_infra.deploy_server("tcp-host", "HelloService", servant);
  ASSERT_EQ(provider.endpoint.rfind("tcp://", 0), 0u) << provider.str();

  SmartProxyConfig cfg;
  cfg.service_type = "HelloService";
  cfg.preference = "min LoadAvg";
  auto proxy = tcp_infra.make_proxy(cfg);
  proxy->add_interest("LoadIncrease", kLoadIncreasePredicate);
  EXPECT_EQ(proxy->invoke("whoami").as_string(), "tcp-server");
  auto mon = proxy->current_monitor();
  ASSERT_TRUE(mon.valid());
  EXPECT_EQ(mon.ref().endpoint.rfind("tcp://", 0), 0u);
  EXPECT_TRUE(mon.getvalue().is_table());
}

}  // namespace
}  // namespace adapt::core
