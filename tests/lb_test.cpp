// Replica-group load balancing (src/lb): breaker state machine, selection
// policies, refresh merging, hedging, and the SmartProxy integration —
// including the kill-one-replica failover path and the sticky-default pin.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <set>
#include <thread>

#include "core/infrastructure.h"
#include "lb/replica_set.h"
#include "obs/metrics.h"

namespace adapt::lb {
namespace {

using core::Infrastructure;
using core::InfrastructureOptions;
using core::NoComponentAvailable;
using core::SmartProxy;
using core::SmartProxyConfig;
using core::TraderUnavailable;
using orb::FunctionServant;

uint64_t counter_value(const std::string& name) {
  return obs::metrics().counter(name).value();
}

TEST(LbPolicyTest, NamesRoundTrip) {
  for (const Policy p :
       {Policy::Sticky, Policy::RoundRobin, Policy::P2c, Policy::Weighted}) {
    EXPECT_EQ(policy_from_name(policy_name(p)), p);
  }
  EXPECT_THROW((void)policy_from_name("fastest"), LbError);
}

// ---- circuit breaker state machine ----------------------------------------

class BreakerTest : public ::testing::Test {
 protected:
  BreakerTest() {
    orb_ = orb::Orb::create(orb::OrbConfig{.name = "lbbrk" + std::to_string(counter_++)});
    servant_ = FunctionServant::make("Svc");
    servant_->on("op", [](const ValueList&) { return Value("ok"); });
    ref_ = orb_->register_servant(servant_);
  }

  Replica make_replica(int threshold, double cooldown) {
    trading::OfferInfo offer;
    offer.offer_id = "offer-1";
    offer.service_type = "Svc";
    offer.provider = ref_;
    return Replica("brk", offer, /*rank=*/0, /*total=*/1, /*prior_latency=*/0.001,
                   BreakerConfig{threshold, cooldown}, /*ewma_alpha=*/0.3, clock_,
                   &obs::metrics().histogram("lb.brk.latency_ns"));
  }

  Value invoke(Replica& r) { return r.invoke(orb_, "op", {}); }

  std::shared_ptr<SimClock> clock_ = std::make_shared<SimClock>();
  orb::OrbPtr orb_;
  std::shared_ptr<FunctionServant> servant_;
  ObjectRef ref_;
  static int counter_;
};

int BreakerTest::counter_ = 0;

TEST_F(BreakerTest, ClosedOpensAfterConsecutiveFailuresThenProbesAndRecovers) {
  const uint64_t opened0 = counter_value("lb.breaker.open");
  const uint64_t closed0 = counter_value("lb.breaker.close");
  Replica r = make_replica(/*threshold=*/3, /*cooldown=*/5.0);

  EXPECT_EQ(invoke(r).as_string(), "ok");
  EXPECT_EQ(r.snapshot().breaker, BreakerState::Closed);

  // Transport-level failures trip the breaker after N consecutive ones.
  orb_->unregister_servant(ref_.object_id);
  for (int i = 0; i < 2; ++i) {
    EXPECT_THROW(invoke(r), orb::ObjectNotFound);
    EXPECT_EQ(r.snapshot().breaker, BreakerState::Closed) << "below threshold";
    EXPECT_TRUE(r.selectable());
  }
  EXPECT_THROW(invoke(r), orb::ObjectNotFound);
  EXPECT_EQ(r.snapshot().breaker, BreakerState::Open);
  EXPECT_FALSE(r.selectable()) << "open replica is evicted from selection";
  EXPECT_FALSE(r.admit()) << "cooldown has not elapsed";
  EXPECT_EQ(counter_value("lb.breaker.open"), opened0 + 1);

  // Cooldown elapses (virtual time): exactly one probe is admitted.
  clock_->advance(5.0);
  EXPECT_TRUE(r.selectable());
  EXPECT_TRUE(r.admit());
  EXPECT_EQ(r.snapshot().breaker, BreakerState::HalfOpen);
  EXPECT_FALSE(r.admit()) << "single probe slot";
  EXPECT_FALSE(r.selectable());

  // Failed probe: back to Open for another full cooldown.
  EXPECT_THROW(invoke(r), orb::ObjectNotFound);
  EXPECT_EQ(r.snapshot().breaker, BreakerState::Open);
  EXPECT_EQ(counter_value("lb.breaker.open"), opened0 + 2);
  EXPECT_FALSE(r.admit());

  // Server comes back; successful probe closes the breaker.
  ref_ = orb_->register_servant(servant_, ref_.object_id);
  clock_->advance(5.0);
  EXPECT_TRUE(r.admit());
  EXPECT_EQ(invoke(r).as_string(), "ok");
  EXPECT_EQ(r.snapshot().breaker, BreakerState::Closed);
  EXPECT_TRUE(r.selectable());
  EXPECT_EQ(counter_value("lb.breaker.close"), closed0 + 1);
}

TEST_F(BreakerTest, ApplicationErrorsDoNotTripTheBreaker) {
  Replica r = make_replica(/*threshold=*/2, /*cooldown=*/5.0);
  servant_->on("boom", [](const ValueList&) -> Value { throw Error("app bug"); });
  for (int i = 0; i < 5; ++i) EXPECT_THROW(r.invoke(orb_, "boom", {}), orb::RemoteError);
  const auto snap = r.snapshot();
  EXPECT_EQ(snap.breaker, BreakerState::Closed) << "the replica answered";
  EXPECT_EQ(snap.consecutive_failures, 0);
  EXPECT_EQ(snap.successes, 5u);
}

TEST_F(BreakerTest, SuccessResetsConsecutiveFailures) {
  Replica r = make_replica(/*threshold=*/3, /*cooldown=*/5.0);
  orb_->unregister_servant(ref_.object_id);
  EXPECT_THROW(invoke(r), orb::ObjectNotFound);
  EXPECT_THROW(invoke(r), orb::ObjectNotFound);
  ref_ = orb_->register_servant(servant_, ref_.object_id);
  EXPECT_EQ(invoke(r).as_string(), "ok");
  EXPECT_EQ(r.snapshot().consecutive_failures, 0);
  orb_->unregister_servant(ref_.object_id);
  EXPECT_THROW(invoke(r), orb::ObjectNotFound);
  EXPECT_EQ(r.snapshot().breaker, BreakerState::Closed) << "streak restarted";
}

// ---- replica set ----------------------------------------------------------

TEST(ReplicaSetTest, RefreshMergesByProviderKeepingStatistics) {
  auto orb = orb::Orb::create(orb::OrbConfig{.name = "lbmerge"});
  auto servant = FunctionServant::make("Svc");
  servant->on("op", [](const ValueList&) { return Value("ok"); });
  const ObjectRef a = orb->register_servant(servant, "prov-a");
  const ObjectRef b = orb->register_servant(servant, "prov-b");
  const ObjectRef c = orb->register_servant(servant, "prov-c");

  auto make_offer = [](const ObjectRef& ref, const std::string& id) {
    trading::OfferInfo o;
    o.offer_id = id;
    o.service_type = "Svc";
    o.provider = ref;
    return o;
  };
  auto offers = std::make_shared<std::vector<trading::OfferInfo>>(
      std::vector<trading::OfferInfo>{make_offer(a, "oa"), make_offer(b, "ob")});

  ReplicaSetConfig cfg;
  cfg.clock = std::make_shared<SimClock>();
  ReplicaSet set("merge", cfg, [offers] { return *offers; });
  set.set_policy(Policy::RoundRobin);

  set.refresh(/*force=*/true);
  ASSERT_EQ(set.size(), 2u);
  for (int i = 0; i < 4; ++i) {
    auto r = set.pick();
    ASSERT_TRUE(r);
    set.invoke(orb, r, "op", {}, /*idempotent=*/false);
  }

  // B vanishes from the market, C appears; A keeps its learned stats.
  *offers = {make_offer(a, "oa2"), make_offer(c, "oc")};
  set.refresh(/*force=*/true);
  ASSERT_EQ(set.size(), 2u);
  bool saw_a = false, saw_c = false;
  for (const auto& snap : set.snapshot()) {
    if (snap.provider == a) {
      saw_a = true;
      EXPECT_EQ(snap.offer_id, "oa2") << "offer payload refreshed";
      EXPECT_EQ(snap.successes, 2u) << "statistics survive the merge";
    }
    if (snap.provider == c) {
      saw_c = true;
      EXPECT_EQ(snap.successes, 0u);
    }
    EXPECT_FALSE(snap.provider == b);
  }
  EXPECT_TRUE(saw_a);
  EXPECT_TRUE(saw_c);
}

TEST(ReplicaSetTest, RefreshFailureKeepsStaleSet) {
  auto orb = orb::Orb::create(orb::OrbConfig{.name = "lbstale"});
  auto servant = FunctionServant::make("Svc");
  servant->on("op", [](const ValueList&) { return Value("ok"); });
  const ObjectRef a = orb->register_servant(servant);

  trading::OfferInfo offer;
  offer.offer_id = "oa";
  offer.service_type = "Svc";
  offer.provider = a;
  auto fail = std::make_shared<bool>(false);
  ReplicaSetConfig cfg;
  cfg.clock = std::make_shared<SimClock>();
  ReplicaSet set("stale", cfg, [fail, offer]() -> std::vector<trading::OfferInfo> {
    if (*fail) throw Error("trader down");
    return {offer};
  });
  set.refresh(/*force=*/true);
  ASSERT_EQ(set.size(), 1u);
  EXPECT_TRUE(set.last_refresh_error().empty());

  const uint64_t errors0 = counter_value("lb.refresh.error");
  *fail = true;
  set.refresh(/*force=*/true);
  EXPECT_EQ(set.size(), 1u) << "stale set kept through the outage";
  EXPECT_FALSE(set.last_refresh_error().empty());
  EXPECT_EQ(counter_value("lb.refresh.error"), errors0 + 1);
  EXPECT_TRUE(set.pick() != nullptr) << "picks keep serving from the stale set";
}

// ---- proxy integration -----------------------------------------------------

class LbProxyTest : public ::testing::Test {
 protected:
  LbProxyTest() {
    trading::ServiceTypeDef type;
    type.name = "Svc";
    infra_.trader().types().add(type);
  }

  /// Deploys a replica whose idempotent "getvalue" identifies the host.
  ObjectRef deploy(const std::string& name, double sleep_s = 0.0) {
    auto servant = FunctionServant::make("Svc");
    servant->on("getvalue", [name, sleep_s](const ValueList&) {
      if (sleep_s > 0) {
        std::this_thread::sleep_for(std::chrono::duration<double>(sleep_s));
      }
      return Value(name);
    });
    servant->on("whoami", [name](const ValueList&) { return Value(name); });
    return infra_.deploy_server(name, "Svc", servant);
  }

  Infrastructure infra_{InfrastructureOptions{.name = "lbp" + std::to_string(counter_++)}};
  static int counter_;
};

int LbProxyTest::counter_ = 0;

TEST_F(LbProxyTest, RoundRobinSpreadsAcrossAllReplicas) {
  deploy("h1");
  deploy("h2");
  deploy("h3");
  SmartProxyConfig cfg;
  cfg.service_type = "Svc";
  cfg.lb_policy = "round_robin";
  auto proxy = infra_.make_proxy(cfg);

  const uint64_t picks0 = counter_value("lb.pick");
  std::map<std::string, int> hits;
  for (int i = 0; i < 9; ++i) ++hits[proxy->invoke("getvalue").as_string()];
  EXPECT_EQ(hits.size(), 3u);
  for (const auto& [name, n] : hits) EXPECT_EQ(n, 3) << name;
  EXPECT_EQ(counter_value("lb.pick"), picks0 + 9);
  EXPECT_EQ(proxy->lb_policy(), "round_robin");
  ASSERT_TRUE(proxy->replica_set());
  EXPECT_EQ(proxy->replica_set()->size(), 3u);
  EXPECT_EQ(proxy->replica_set()->healthy(), 3u);
}

TEST_F(LbProxyTest, P2cSpreadsLoadAcrossReplicas) {
  deploy("h1");
  deploy("h2");
  deploy("h3");
  SmartProxyConfig cfg;
  cfg.service_type = "Svc";
  cfg.lb_policy = "p2c";
  auto proxy = infra_.make_proxy(cfg);

  std::set<std::string> seen;
  for (int i = 0; i < 30; ++i) seen.insert(proxy->invoke("getvalue").as_string());
  EXPECT_GE(seen.size(), 2u) << "p2c must not fixate on one replica";
}

TEST_F(LbProxyTest, KillOneReplicaFailsOverAndRequeries) {
  deploy("h1");
  const ObjectRef killed = deploy("h2");
  deploy("h3");
  SmartProxyConfig cfg;
  cfg.service_type = "Svc";
  cfg.lb_policy = "round_robin";
  cfg.lb.breaker.failure_threshold = 1;
  cfg.lb.breaker.open_cooldown = 1000.0;  // stays open for the whole test
  cfg.lb.refresh_ttl = 10.0;
  auto proxy = infra_.make_proxy(cfg);

  for (int i = 0; i < 6; ++i) EXPECT_NO_THROW(proxy->invoke("getvalue"));
  ASSERT_EQ(proxy->replica_set()->healthy(), 3u);

  // h2's servant dies: the next pick of it fails, the breaker opens, and
  // auto-failover repicks — the caller never sees the failure.
  const uint64_t opened0 = counter_value("lb.breaker.open");
  infra_.host_orb("h2")->unregister_servant(killed.object_id);
  std::map<std::string, int> hits;
  for (int i = 0; i < 12; ++i) ++hits[proxy->invoke("getvalue").as_string()];
  EXPECT_EQ(hits.count("h2"), 0u);
  EXPECT_GT(hits["h1"], 0);
  EXPECT_GT(hits["h3"], 0);
  EXPECT_GE(counter_value("lb.breaker.open"), opened0 + 1);
  EXPECT_EQ(proxy->replica_set()->healthy(), 2u);
  EXPECT_EQ(proxy->replica_set()->size(), 3u);

  // The offer disappears from the market too; once the TTL elapses the next
  // pick re-queries and the dead replica drops out of the set entirely.
  for (const auto& info : infra_.trader().query("Svc", "")) {
    if (info.provider == killed) infra_.trader().withdraw(info.offer_id);
  }
  infra_.run_for(15.0);
  EXPECT_NO_THROW(proxy->invoke("getvalue"));
  EXPECT_EQ(proxy->replica_set()->size(), 2u);
  EXPECT_EQ(proxy->replica_set()->healthy(), 2u);
}

TEST_F(LbProxyTest, HedgingSkipsInProcessTargets) {
  // Hedge attempts run on helper threads, so only remote replicas are ever
  // hedged (see HedgeConfig): an all-in-proc set must never fire one, even
  // when the primary stalls well past the hedge budget.
  deploy("slow", /*sleep_s=*/0.05);
  deploy("fast");
  SmartProxyConfig cfg;
  cfg.service_type = "Svc";
  cfg.lb_policy = "round_robin";
  cfg.lb.hedge.enabled = true;
  cfg.lb.hedge.min_delay = 0.005;
  cfg.lb.hedge.max_delay = 0.005;
  auto proxy = infra_.make_proxy(cfg);

  const uint64_t fired0 = counter_value("lb.hedge.fired");
  std::map<std::string, int> hits;
  for (int i = 0; i < 4; ++i) ++hits[proxy->invoke("getvalue").as_string()];
  EXPECT_EQ(counter_value("lb.hedge.fired"), fired0);
  EXPECT_EQ(hits["slow"], 2) << "slow in-proc picks are served in place";
}

// ---- hedged requests -------------------------------------------------------

// Hedging only targets remote replicas, so these tests run real TCP
// servers: one slow, one fast, both offered through the trader.
class HedgeTest : public ::testing::Test {
 protected:
  HedgeTest() {
    trading::ServiceTypeDef type;
    type.name = "Svc";
    infra_.trader().types().add(type);
    // The slow server is exported first and wins the preference rank, so
    // round robin starts there.
    slow_orb_ = make_server("slow", /*sleep_s=*/0.25);
    fast_orb_ = make_server("fast", /*sleep_s=*/0.0);
    client_ = orb::Orb::create(orb::OrbConfig{
        .name = "lbhedge-cli" + std::to_string(counter_++), .request_timeout = 5.0});
  }

  ~HedgeTest() override {
    slow_orb_->shutdown();
    fast_orb_->shutdown();
  }

  /// A TCP server whose operations identify it after sleeping sleep_s.
  orb::OrbPtr make_server(const std::string& name, double sleep_s) {
    auto server = orb::Orb::create(orb::OrbConfig{
        .name = "lbhedge-" + name + std::to_string(counter_), .listen_tcp = true});
    auto servant = FunctionServant::make("Svc");
    auto reply = [name, sleep_s](const ValueList&) {
      if (sleep_s > 0) {
        std::this_thread::sleep_for(std::chrono::duration<double>(sleep_s));
      }
      return Value(name);
    };
    servant->on("getvalue", reply);
    servant->on("whoami", reply);
    infra_.trader().export_offer("Svc", server->register_servant(servant), {});
    return server;
  }

  core::SmartProxyPtr make_proxy(double hedge_delay_s) {
    SmartProxyConfig cfg;
    cfg.service_type = "Svc";
    cfg.monitor_property = "";
    cfg.lb_policy = "round_robin";
    cfg.lb.hedge.enabled = true;
    cfg.lb.hedge.min_delay = hedge_delay_s;
    cfg.lb.hedge.max_delay = hedge_delay_s;
    return SmartProxy::create(client_, infra_.trader().lookup_ref(), cfg);
  }

  Infrastructure infra_{InfrastructureOptions{.name = "lbh" + std::to_string(counter_)}};
  orb::OrbPtr slow_orb_;
  orb::OrbPtr fast_orb_;
  orb::OrbPtr client_;
  static int counter_;
};

int HedgeTest::counter_ = 0;

TEST_F(HedgeTest, HedgedRequestWinsOverSlowPrimary) {
  // Round-robin over a slow and a fast replica: when the slow one is the
  // primary, the hedge fires at the (clamped) budget and the fast replica's
  // response wins.
  auto proxy = make_proxy(/*hedge_delay_s=*/0.01);
  const uint64_t fired0 = counter_value("lb.hedge.fired");
  const uint64_t won0 = counter_value("lb.hedge.won");
  std::map<std::string, int> hits;
  for (int i = 0; i < 4; ++i) ++hits[proxy->invoke("getvalue").as_string()];
  EXPECT_EQ(hits["fast"], 4) << "hedge rescues every slow-primary pick";
  EXPECT_GE(counter_value("lb.hedge.fired"), fired0 + 2);
  EXPECT_GE(counter_value("lb.hedge.won"), won0 + 2);
}

TEST_F(HedgeTest, HedgingSkipsNonIdempotentOperations) {
  // "whoami" is not in the ORB's idempotent set: it must never hedge, even
  // when the primary is slow.
  auto proxy = make_proxy(/*hedge_delay_s=*/0.005);
  const uint64_t fired0 = counter_value("lb.hedge.fired");
  std::map<std::string, int> hits;
  for (int i = 0; i < 4; ++i) ++hits[proxy->invoke("whoami").as_string()];
  EXPECT_EQ(counter_value("lb.hedge.fired"), fired0);
  EXPECT_EQ(hits["slow"], 2) << "round robin still reaches the slow replica";
}

TEST_F(LbProxyTest, StickyDefaultNeverCreatesAReplicaSet) {
  deploy("h1");
  deploy("h2");
  SmartProxyConfig cfg;
  cfg.service_type = "Svc";
  auto proxy = infra_.make_proxy(cfg);
  ASSERT_TRUE(proxy->select());

  const uint64_t picks0 = counter_value("lb.pick");
  for (int i = 0; i < 5; ++i) EXPECT_NO_THROW(proxy->invoke("whoami"));
  EXPECT_EQ(proxy->replica_set(), nullptr)
      << "default config must not instantiate the balancing layer";
  EXPECT_EQ(proxy->lb_policy(), "sticky");
  EXPECT_EQ(counter_value("lb.pick"), picks0);
  EXPECT_EQ(proxy->binding_history().size(), 1u) << "single-bind behavior";
}

TEST_F(LbProxyTest, StrategyScriptsRetuneBalancing) {
  deploy("h1");
  deploy("h2");
  deploy("h3");
  SmartProxyConfig cfg;
  cfg.service_type = "Svc";
  auto proxy = infra_.make_proxy(cfg);

  // lb.* passes the strategy capability policy (lint gate runs inside).
  proxy->eval_strategy_script("lb.set_policy('p2c')");
  EXPECT_EQ(proxy->lb_policy(), "p2c");
  EXPECT_NO_THROW(proxy->invoke("getvalue"));

  // A custom scorer overrides the policy: highest trader-preference weight
  // wins, which is deterministic — always the first-ranked offer.
  proxy->eval_strategy_script("lb.score(function(s) return s.weight end)");
  std::set<std::string> seen;
  for (int i = 0; i < 6; ++i) seen.insert(proxy->invoke("getvalue").as_string());
  EXPECT_EQ(seen.size(), 1u) << "scorer pins selection to one replica";

  const Value stats = proxy->engine()->eval1("return lb.stats()");
  ASSERT_TRUE(stats.is_table());
  EXPECT_EQ(stats.as_table()->get(Value("size")).as_number(), 3.0);
  EXPECT_EQ(stats.as_table()->get(Value("policy")).as_string(), "p2c");
  EXPECT_TRUE(stats.as_table()->get(Value("custom_score")).as_bool());

  // Clearing the scorer restores the configured policy.
  proxy->eval_strategy_script("lb.score(nil)");
  EXPECT_FALSE(proxy->replica_set()->has_score_fn());
}

// ---- satellite fixes -------------------------------------------------------

TEST_F(LbProxyTest, TraderOutageIsDistinguishedFromNoMatch) {
  deploy("h1");
  SmartProxyConfig cfg;
  cfg.service_type = "Svc";

  // Unreachable trader: select() keeps its false-no-throw contract, but the
  // invoke error names the outage.
  auto orphan = SmartProxy::create(infra_.make_orb("lb-orphan"),
                                   ObjectRef{"inproc://nowhere", "lookup", ""}, cfg);
  const uint64_t errors0 = counter_value("proxy.trader.error");
  EXPECT_FALSE(orphan->select());
  EXPECT_GE(counter_value("proxy.trader.error"), errors0 + 1);
  EXPECT_THROW(orphan->invoke("whoami"), TraderUnavailable);

  // Healthy trader, zero matching offers: plain NoComponentAvailable.
  trading::ServiceTypeDef type;
  type.name = "EmptySvc";
  infra_.trader().types().add(type);
  SmartProxyConfig empty_cfg;
  empty_cfg.service_type = "EmptySvc";
  auto empty = infra_.make_proxy(empty_cfg);
  EXPECT_FALSE(empty->select());
  try {
    empty->invoke("whoami");
    FAIL() << "expected NoComponentAvailable";
  } catch (const TraderUnavailable&) {
    FAIL() << "no-match must not be reported as a trader outage";
  } catch (const NoComponentAvailable&) {
  }
}

TEST_F(LbProxyTest, BalancedInvokeReportsTraderOutage) {
  SmartProxyConfig cfg;
  cfg.service_type = "Svc";
  cfg.lb_policy = "round_robin";
  auto orphan = SmartProxy::create(infra_.make_orb("lb-orphan2"),
                                   ObjectRef{"inproc://nowhere", "lookup", ""}, cfg);
  EXPECT_THROW(orphan->invoke("getvalue"), TraderUnavailable);
}

class FailoverGateTest : public ::testing::Test {
 protected:
  FailoverGateTest() {
    trading::ServiceTypeDef type;
    type.name = "Svc";
    infra_.trader().types().add(type);

    // A TCP server whose operations stall longer than the client's request
    // timeout: the request is fully written before the failure, so the
    // TransportError carries maybe_executed = true.
    server_ = orb::Orb::create(orb::OrbConfig{
        .name = "lbgate-srv" + std::to_string(counter_), .listen_tcp = true});
    auto slow = FunctionServant::make("Svc");
    slow->on("getvalue", [](const ValueList&) {
      std::this_thread::sleep_for(std::chrono::milliseconds(600));
      return Value("slow");
    });
    slow->on("submit", [this](const ValueList&) {
      ++submits_;
      std::this_thread::sleep_for(std::chrono::milliseconds(600));
      return Value("slow");
    });
    slow_ref_ = server_->register_servant(slow);
    infra_.trader().export_offer("Svc", slow_ref_, {});

    // A healthy in-process fallback replica, exported second so the slow
    // server is the preference winner.
    auto fast_orb = infra_.make_orb("lbgate-fast" + std::to_string(counter_));
    auto fast = FunctionServant::make("Svc");
    fast->on("getvalue", [](const ValueList&) { return Value("fast"); });
    fast->on("submit", [](const ValueList&) { return Value("fast"); });
    fast_ref_ = fast_orb->register_servant(fast);
    infra_.trader().export_offer("Svc", fast_ref_, {});
    fast_orb_ = fast_orb;

    client_ = orb::Orb::create(orb::OrbConfig{
        .name = "lbgate-cli" + std::to_string(counter_++), .request_timeout = 0.2});
  }

  ~FailoverGateTest() override { server_->shutdown(); }

  core::SmartProxyPtr make_proxy() {
    SmartProxyConfig cfg;
    cfg.service_type = "Svc";
    cfg.monitor_property = "";
    return SmartProxy::create(client_, infra_.trader().lookup_ref(), cfg);
  }

  Infrastructure infra_{InfrastructureOptions{.name = "lbg" + std::to_string(counter_)}};
  orb::OrbPtr server_;
  orb::OrbPtr fast_orb_;
  orb::OrbPtr client_;
  ObjectRef slow_ref_;
  ObjectRef fast_ref_;
  std::atomic<int> submits_{0};
  static int counter_;
};

int FailoverGateTest::counter_ = 0;

TEST_F(FailoverGateTest, PostSendTimeoutFailsOverOnlyWhenIdempotent) {
  // Idempotent operation: the timeout strikes after the request was written,
  // but re-execution is safe — the proxy reselects and the fast replica
  // answers.
  auto proxy = make_proxy();
  ASSERT_TRUE(proxy->select());
  ASSERT_TRUE(proxy->current() == slow_ref_);
  EXPECT_EQ(proxy->invoke("getvalue").as_string(), "fast");
  EXPECT_EQ(proxy->binding_history().size(), 2u) << "failed over to the fast replica";

  // Non-idempotent operation: the slow server may already be executing it,
  // so auto-failover must NOT re-run it elsewhere — the timeout surfaces.
  auto proxy2 = make_proxy();
  ASSERT_TRUE(proxy2->select());
  ASSERT_TRUE(proxy2->current() == slow_ref_);
  try {
    proxy2->invoke("submit");
    FAIL() << "expected TimeoutError";
  } catch (const orb::TransportError& e) {
    EXPECT_TRUE(e.maybe_executed());
  }
  EXPECT_EQ(proxy2->binding_history().size(), 1u) << "no reselect for maybe-executed call";
  // Wait out the stalled dispatch, then confirm it ran exactly once: the
  // gate prevented a duplicate execution.
  std::this_thread::sleep_for(std::chrono::milliseconds(700));
  EXPECT_EQ(submits_.load(), 1);
}

}  // namespace
}  // namespace adapt::lb
