// TCP transport tests: real-socket invocations, oneways, failures, timeouts,
// concurrency, reconnection after server restart.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "orb/orb.h"

namespace adapt::orb {
namespace {

OrbPtr make_tcp_orb(const std::string& name) {
  OrbConfig cfg;
  cfg.name = name;
  cfg.listen_tcp = true;
  cfg.request_timeout = 5.0;
  return Orb::create(cfg);
}

TEST(TcpAddressTest, Parse) {
  const TcpAddress a = TcpAddress::parse("tcp://127.0.0.1:8080");
  EXPECT_EQ(a.host, "127.0.0.1");
  EXPECT_EQ(a.port, 8080);
}

TEST(TcpAddressTest, Malformed) {
  EXPECT_THROW(TcpAddress::parse("inproc://x"), TransportError);
  EXPECT_THROW(TcpAddress::parse("tcp://nohost"), TransportError);
  EXPECT_THROW(TcpAddress::parse("tcp://:8080"), TransportError);
  EXPECT_THROW(TcpAddress::parse("tcp://h:notaport"), TransportError);
  EXPECT_THROW(TcpAddress::parse("tcp://h:99999"), TransportError);
}

TEST(TcpOrbTest, EndpointIsTcpWhenListening) {
  auto orb = make_tcp_orb("tcp-endpoint-test");
  EXPECT_EQ(orb->endpoint().rfind("tcp://127.0.0.1:", 0), 0u) << orb->endpoint();
}

TEST(TcpOrbTest, RemoteInvocation) {
  auto server = make_tcp_orb("tcp-server-1");
  auto client = Orb::create({.name = "tcp-client-1"});
  auto servant = FunctionServant::make("Echo");
  servant->on("shout", [](const ValueList& args) {
    return Value(args.at(0).as_string() + "!");
  });
  const ObjectRef ref = server->register_servant(servant);
  ASSERT_EQ(ref.endpoint.rfind("tcp://", 0), 0u);
  EXPECT_EQ(client->invoke(ref, "shout", {Value("hey")}).as_string(), "hey!");
}

TEST(TcpOrbTest, StructuredArgumentsOverTcp) {
  auto server = make_tcp_orb("tcp-server-2");
  auto client = Orb::create({.name = "tcp-client-2"});
  auto servant = FunctionServant::make("Stats");
  servant->on("sum", [](const ValueList& args) {
    const Table& t = *args.at(0).as_table();
    double sum = 0;
    for (int64_t i = 1; i <= t.length(); ++i) sum += t.geti(i).as_number();
    return Value(sum);
  });
  const ObjectRef ref = server->register_servant(servant);
  auto numbers = Table::make_array({Value(1.5), Value(2.5), Value(3.0)});
  EXPECT_DOUBLE_EQ(client->invoke(ref, "sum", {Value(numbers)}).as_number(), 7.0);
}

TEST(TcpOrbTest, ObjectRefTravelsOverTcpAndIsCallable) {
  auto server = make_tcp_orb("tcp-server-3");
  auto client = Orb::create({.name = "tcp-client-3"});
  auto target = FunctionServant::make("Target");
  target->on("whoami", [](const ValueList&) { return Value("the target"); });
  const ObjectRef target_ref = server->register_servant(target);

  auto directory = FunctionServant::make("Directory");
  directory->on("lookup", [target_ref](const ValueList&) { return Value(target_ref); });
  const ObjectRef dir_ref = server->register_servant(directory);

  const Value fetched = client->invoke(dir_ref, "lookup", {});
  ASSERT_TRUE(fetched.is_object());
  EXPECT_EQ(client->invoke(fetched.as_object(), "whoami", {}).as_string(), "the target");
}

TEST(TcpOrbTest, RemoteErrorsPropagate) {
  auto server = make_tcp_orb("tcp-server-4");
  auto client = Orb::create({.name = "tcp-client-4"});
  auto servant = FunctionServant::make("Flaky");
  servant->on("die", [](const ValueList&) -> Value { throw Error("remote boom"); });
  const ObjectRef ref = server->register_servant(servant);
  EXPECT_THROW(client->invoke(ref, "die", {}), RemoteError);
  EXPECT_THROW(client->invoke(ref, "undefined", {}), BadOperation);
  ObjectRef missing = ref;
  missing.object_id = "missing";
  EXPECT_THROW(client->invoke(missing, "die", {}), ObjectNotFound);
}

TEST(TcpOrbTest, ConnectionRefusedIsTransportError) {
  auto client = Orb::create({.name = "tcp-client-5"});
  // Bind-then-close to find a port that is almost certainly not listening.
  auto probe = make_tcp_orb("tcp-probe");
  const std::string endpoint = probe->endpoint();
  probe->shutdown();
  ObjectRef ref{endpoint, "obj", ""};
  EXPECT_THROW(client->invoke(ref, "op", {}), TransportError);
}

TEST(TcpOrbTest, OnewayOverTcp) {
  auto server = make_tcp_orb("tcp-server-5");
  auto client = Orb::create({.name = "tcp-client-6"});
  auto hits = std::make_shared<std::atomic<int>>(0);
  auto servant = FunctionServant::make("Sink");
  servant->on("notify", [hits](const ValueList&) {
    ++*hits;
    return Value();
  });
  const ObjectRef ref = server->register_servant(servant);
  client->invoke_oneway(ref, "notify");
  client->invoke_oneway(ref, "notify");
  // oneways are fire-and-forget: wait briefly for delivery
  for (int i = 0; i < 200 && hits->load() < 2; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_EQ(hits->load(), 2);
  // A later two-way call on the same connection still works (framing intact).
  EXPECT_TRUE(client->ping(ref));
}

TEST(TcpOrbTest, ConcurrentClients) {
  auto server = make_tcp_orb("tcp-server-6");
  auto servant = FunctionServant::make("Counter");
  auto hits = std::make_shared<std::atomic<int>>(0);
  servant->on("hit", [hits](const ValueList&) {
    ++*hits;
    return Value(hits->load());
  });
  const ObjectRef ref = server->register_servant(servant);
  constexpr int kThreads = 6;
  constexpr int kCalls = 50;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      auto client = Orb::create({.name = "tcp-cc-" + std::to_string(t)});
      for (int i = 0; i < kCalls; ++i) client->invoke(ref, "hit", {});
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(hits->load(), kThreads * kCalls);
}

TEST(TcpOrbTest, SlowServantTimesOut) {
  OrbConfig server_cfg;
  server_cfg.name = "tcp-slow-server";
  server_cfg.listen_tcp = true;
  auto server = Orb::create(server_cfg);
  auto servant = FunctionServant::make("Slow");
  servant->on("sleep", [](const ValueList&) {
    std::this_thread::sleep_for(std::chrono::milliseconds(600));
    return Value("done");
  });
  const ObjectRef ref = server->register_servant(servant);

  OrbConfig client_cfg;
  client_cfg.name = "tcp-impatient-client";
  client_cfg.request_timeout = 0.1;
  auto client = Orb::create(client_cfg);
  EXPECT_THROW(client->invoke(ref, "sleep", {}), TransportError);
}

TEST(TcpOrbTest, ServerRestartNewConnectionWorks) {
  ObjectRef ref;
  uint16_t port = 0;
  {
    auto server = make_tcp_orb("tcp-restart-a");
    auto servant = FunctionServant::make("S");
    servant->on("v", [](const ValueList&) { return Value(1.0); });
    ref = server->register_servant(servant, "the-object");
    port = TcpAddress::parse(server->endpoint()).port;
    auto client = Orb::create({.name = "tcp-restart-client-1"});
    EXPECT_DOUBLE_EQ(client->invoke(ref, "v", {}).as_number(), 1.0);
  }
  // Server gone: connection fails.
  {
    auto client = Orb::create({.name = "tcp-restart-client-2"});
    EXPECT_THROW(client->invoke(ref, "v", {}), TransportError);
  }
  // Restart on the same port; a fresh client reaches the new incarnation.
  OrbConfig cfg;
  cfg.name = "tcp-restart-b";
  cfg.listen_tcp = true;
  cfg.listen_port = port;
  auto revived = Orb::create(cfg);
  auto servant = FunctionServant::make("S");
  servant->on("v", [](const ValueList&) { return Value(2.0); });
  revived->register_servant(servant, "the-object");
  auto client = Orb::create({.name = "tcp-restart-client-3"});
  EXPECT_DOUBLE_EQ(client->invoke(ref, "v", {}).as_number(), 2.0);
}

}  // namespace
}  // namespace adapt::orb
