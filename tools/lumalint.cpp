// lumalint: standalone static analysis for Luma adaptation code.
//
// Runs the same resolver/lint/capability/dataflow passes the runtime applies
// at every remote-evaluation ingestion point (Engine::analyze), against the
// full native-signature catalog of the infrastructure — stdlib, obs, orb,
// events, lb, monitor, trading, infra, agent, smartproxy — without needing any live
// objects. Lets operators verify adaptation scripts *before* shipping them
// to an agent, monitor or smart proxy.
//
//   lumalint [options] file...        ("-" reads stdin)
//     --policy=monitor|strategy|shell   capability policy (default: shell)
//     --function                        treat input as a function literal,
//                                       wrapped exactly like compile_function
//     --globals=a,b,c                   extra globals assumed defined
//     --json                            machine-readable diagnostics
//     --sarif[=FILE]                    SARIF 2.1.0 report (stdout when no
//                                       FILE; with FILE, console output is
//                                       kept alongside)
//     --manifest                        print the inferred capability
//                                       manifest (capabilities reached,
//                                       privileged sinks invoked, cost
//                                       boundedness) per file
//     --werror                          warnings fail the run (exit 3)
//
// Exit status: 0 = no error-severity diagnostics, 1 = at least one error,
// 2 = usage / IO problem, 3 = warnings present and --werror given.
#include <fstream>
#include <iostream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "core/script_bindings.h"
#include "events/script_bindings.h"
#include "lb/script_bindings.h"
#include "monitor/bindings.h"
#include "obs/script_bindings.h"
#include "orb/script_bindings.h"
#include "script/analysis/analyzer.h"
#include "script/analysis/policy.h"
#include "script/engine.h"
#include "trading/script_bindings.h"

namespace {

using namespace adapt;
using script::analysis::Diagnostic;
using script::analysis::Severity;

/// The full catalog: every native the infrastructure can inject.
script::analysis::NativeRegistry full_catalog() {
  script::analysis::NativeRegistry reg;
  script::declare_stdlib_signatures(reg);
  obs::declare_obs_signatures(reg);
  orb::declare_orb_signatures(reg);
  events::declare_events_signatures(reg);
  lb::declare_lb_signatures(reg);
  monitor::declare_monitor_signatures(reg);
  trading::declare_trading_signatures(reg);
  core::declare_infrastructure_signatures(reg);
  core::declare_agent_signatures(reg);
  core::declare_smartproxy_signatures(reg);
  return reg;
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void print_json(std::ostream& os, const std::string& file,
                const std::vector<Diagnostic>& diags, bool& first) {
  for (const auto& d : diags) {
    os << (first ? "" : ",\n") << "  {\"file\":\"" << json_escape(file)
       << "\",\"line\":" << d.line << ",\"col\":" << d.col << ",\"severity\":\""
       << script::analysis::severity_name(d.severity) << "\",\"code\":\"" << d.code
       << "\",\"message\":\"" << json_escape(d.message) << "\"}";
    first = false;
  }
}

const char* sarif_level(Severity s) {
  switch (s) {
    case Severity::Error: return "error";
    case Severity::Warning: return "warning";
    case Severity::Hint: return "note";
  }
  return "none";
}

struct FileResult {
  std::string file;
  std::vector<Diagnostic> diags;
};

/// SARIF 2.1.0: one run, one driver, one result per diagnostic. Rules are
/// the distinct diagnostic codes seen, so uploads get per-rule grouping.
void write_sarif(std::ostream& os, const std::vector<FileResult>& results) {
  std::set<std::string> rules;
  for (const auto& r : results) {
    for (const auto& d : r.diags) rules.insert(d.code);
  }
  os << "{\n"
     << "  \"$schema\": \"https://json.schemastore.org/sarif-2.1.0.json\",\n"
     << "  \"version\": \"2.1.0\",\n"
     << "  \"runs\": [\n    {\n"
     << "      \"tool\": {\n        \"driver\": {\n"
     << "          \"name\": \"lumalint\",\n"
     << "          \"informationUri\": \"https://example.invalid/lumalint\",\n"
     << "          \"rules\": [";
  bool first = true;
  for (const auto& rule : rules) {
    os << (first ? "" : ",") << "\n            {\"id\": \"" << json_escape(rule) << "\"}";
    first = false;
  }
  os << (first ? "" : "\n          ") << "]\n        }\n      },\n"
     << "      \"results\": [";
  first = true;
  for (const auto& r : results) {
    for (const auto& d : r.diags) {
      os << (first ? "" : ",") << "\n        {\n"
         << "          \"ruleId\": \"" << json_escape(d.code) << "\",\n"
         << "          \"level\": \"" << sarif_level(d.severity) << "\",\n"
         << "          \"message\": {\"text\": \"" << json_escape(d.message) << "\"},\n"
         << "          \"locations\": [{\"physicalLocation\": {"
         << "\"artifactLocation\": {\"uri\": \"" << json_escape(r.file) << "\"}, "
         << "\"region\": {\"startLine\": " << (d.line > 0 ? d.line : 1)
         << ", \"startColumn\": " << (d.col > 0 ? d.col : 1) << "}}}]\n"
         << "        }";
      first = false;
    }
  }
  os << (first ? "" : "\n      ") << "]\n    }\n  ]\n}\n";
}

void print_manifest(std::ostream& os, const std::string& file,
                    const script::analysis::AnalysisReport& report) {
  os << "{\"file\":\"" << json_escape(file) << "\",\"capabilities\":[";
  bool first = true;
  for (const auto& c : report.capabilities) {
    os << (first ? "" : ",") << "\"" << json_escape(c) << "\"";
    first = false;
  }
  os << "],\"sinks\":[";
  first = true;
  for (const auto& s : report.sinks) {
    os << (first ? "" : ",") << "\"" << json_escape(s) << "\"";
    first = false;
  }
  os << "],\"cost_bounded\":" << (report.cost_bounded ? "true" : "false") << "}\n";
}

int usage(const char* argv0) {
  std::cerr << "usage: " << argv0
            << " [--policy=monitor|strategy|shell] [--function] [--globals=a,b,c]"
               " [--json] [--sarif[=FILE]] [--manifest] [--werror] file...\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  const script::analysis::CapabilityPolicy* policy = &script::analysis::shell_policy();
  bool as_function = false;
  bool json = false;
  bool werror = false;
  bool manifest = false;
  bool sarif = false;
  std::string sarif_path;
  std::vector<std::string> extra_globals;
  std::vector<std::string> files;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--policy=", 0) == 0) {
      policy = script::analysis::find_policy(arg.substr(9));
      if (policy == nullptr) {
        std::cerr << "lumalint: unknown policy '" << arg.substr(9) << "'\n";
        return 2;
      }
    } else if (arg == "--function") {
      as_function = true;
    } else if (arg == "--json") {
      json = true;
    } else if (arg == "--werror") {
      werror = true;
    } else if (arg == "--manifest") {
      manifest = true;
    } else if (arg == "--sarif") {
      sarif = true;
    } else if (arg.rfind("--sarif=", 0) == 0) {
      sarif = true;
      sarif_path = arg.substr(8);
    } else if (arg.rfind("--globals=", 0) == 0) {
      std::stringstream ss(arg.substr(10));
      std::string name;
      while (std::getline(ss, name, ',')) {
        if (!name.empty()) extra_globals.push_back(name);
      }
    } else if (arg == "--help" || arg == "-h") {
      usage(argv[0]);
      return 0;
    } else if (arg.rfind("--", 0) == 0) {
      std::cerr << "lumalint: unknown option '" << arg << "'\n";
      return usage(argv[0]);
    } else {
      files.push_back(arg);
    }
  }
  if (files.empty()) return usage(argv[0]);

  const script::analysis::NativeRegistry catalog = full_catalog();
  script::analysis::AnalyzeOptions opts;
  opts.policy = policy;
  opts.extra_globals = extra_globals;

  // SARIF without a path goes to stdout and replaces the console report;
  // with a path both are produced (CI uploads the file, the log stays
  // readable).
  const bool sarif_to_stdout = sarif && sarif_path.empty();
  const bool console = !json && !sarif_to_stdout;

  bool any_error = false;
  bool any_warning = false;
  bool first_json = true;
  std::vector<FileResult> results;
  if (json) std::cout << "[\n";
  for (const std::string& file : files) {
    std::string source;
    if (file == "-") {
      std::stringstream buf;
      buf << std::cin.rdbuf();
      source = buf.str();
    } else {
      std::ifstream in(file);
      if (!in) {
        std::cerr << "lumalint: cannot read " << file << "\n";
        return 2;
      }
      std::stringstream buf;
      buf << in.rdbuf();
      source = buf.str();
    }
    if (as_function) source = "return (" + source + "\n)";
    script::analysis::AnalysisReport report =
        script::analysis::analyze_source_full(source, file, catalog, opts);
    any_error = any_error || script::analysis::has_errors(report.diags);
    for (const auto& d : report.diags) {
      any_warning = any_warning || d.severity == Severity::Warning;
    }
    if (json) {
      print_json(std::cout, file, report.diags, first_json);
    } else if (console) {
      for (const auto& d : report.diags) {
        std::cout << file << ":" << script::analysis::format(d) << "\n";
      }
    }
    if (manifest) print_manifest(std::cout, file, report);
    if (sarif) results.push_back(FileResult{file, std::move(report.diags)});
  }
  if (json) std::cout << (first_json ? "" : "\n") << "]\n";
  if (sarif) {
    if (sarif_to_stdout) {
      write_sarif(std::cout, results);
    } else {
      std::ofstream out(sarif_path);
      if (!out) {
        std::cerr << "lumalint: cannot write " << sarif_path << "\n";
        return 2;
      }
      write_sarif(out, results);
    }
  }
  if (any_error) return 1;
  if (werror && any_warning) return 3;
  return 0;
}
