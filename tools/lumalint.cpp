// lumalint: standalone static analysis for Luma adaptation code.
//
// Runs the same resolver/lint/capability passes the runtime applies at every
// remote-evaluation ingestion point (Engine::analyze), against the full
// native-signature catalog of the infrastructure — stdlib, obs, orb,
// events, lb, monitor, trading, infra, agent, smartproxy — without needing any live
// objects. Lets operators verify adaptation scripts *before* shipping them
// to an agent, monitor or smart proxy.
//
//   lumalint [options] file...        ("-" reads stdin)
//     --policy=monitor|strategy|shell   capability policy (default: shell)
//     --function                        treat input as a function literal,
//                                       wrapped exactly like compile_function
//     --globals=a,b,c                   extra globals assumed defined
//     --json                            machine-readable diagnostics
//
// Exit status: 0 = no error-severity diagnostics, 1 = at least one error,
// 2 = usage / IO problem.
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "core/script_bindings.h"
#include "events/script_bindings.h"
#include "lb/script_bindings.h"
#include "monitor/bindings.h"
#include "obs/script_bindings.h"
#include "orb/script_bindings.h"
#include "script/analysis/analyzer.h"
#include "script/analysis/policy.h"
#include "script/engine.h"
#include "trading/script_bindings.h"

namespace {

using namespace adapt;
using script::analysis::Diagnostic;

/// The full catalog: every native the infrastructure can inject.
script::analysis::NativeRegistry full_catalog() {
  script::analysis::NativeRegistry reg;
  script::declare_stdlib_signatures(reg);
  obs::declare_obs_signatures(reg);
  orb::declare_orb_signatures(reg);
  events::declare_events_signatures(reg);
  lb::declare_lb_signatures(reg);
  monitor::declare_monitor_signatures(reg);
  trading::declare_trading_signatures(reg);
  core::declare_infrastructure_signatures(reg);
  core::declare_agent_signatures(reg);
  core::declare_smartproxy_signatures(reg);
  return reg;
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void print_json(std::ostream& os, const std::string& file,
                const std::vector<Diagnostic>& diags, bool& first) {
  for (const auto& d : diags) {
    os << (first ? "" : ",\n") << "  {\"file\":\"" << json_escape(file)
       << "\",\"line\":" << d.line << ",\"col\":" << d.col << ",\"severity\":\""
       << script::analysis::severity_name(d.severity) << "\",\"code\":\"" << d.code
       << "\",\"message\":\"" << json_escape(d.message) << "\"}";
    first = false;
  }
}

int usage(const char* argv0) {
  std::cerr << "usage: " << argv0
            << " [--policy=monitor|strategy|shell] [--function] [--globals=a,b,c]"
               " [--json] file...\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  const script::analysis::CapabilityPolicy* policy = &script::analysis::shell_policy();
  bool as_function = false;
  bool json = false;
  std::vector<std::string> extra_globals;
  std::vector<std::string> files;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--policy=", 0) == 0) {
      policy = script::analysis::find_policy(arg.substr(9));
      if (policy == nullptr) {
        std::cerr << "lumalint: unknown policy '" << arg.substr(9) << "'\n";
        return 2;
      }
    } else if (arg == "--function") {
      as_function = true;
    } else if (arg == "--json") {
      json = true;
    } else if (arg.rfind("--globals=", 0) == 0) {
      std::stringstream ss(arg.substr(10));
      std::string name;
      while (std::getline(ss, name, ',')) {
        if (!name.empty()) extra_globals.push_back(name);
      }
    } else if (arg == "--help" || arg == "-h") {
      usage(argv[0]);
      return 0;
    } else if (arg.rfind("--", 0) == 0) {
      std::cerr << "lumalint: unknown option '" << arg << "'\n";
      return usage(argv[0]);
    } else {
      files.push_back(arg);
    }
  }
  if (files.empty()) return usage(argv[0]);

  const script::analysis::NativeRegistry catalog = full_catalog();
  script::analysis::AnalyzeOptions opts;
  opts.policy = policy;
  opts.extra_globals = extra_globals;

  bool any_error = false;
  bool first_json = true;
  if (json) std::cout << "[\n";
  for (const std::string& file : files) {
    std::string source;
    if (file == "-") {
      std::stringstream buf;
      buf << std::cin.rdbuf();
      source = buf.str();
    } else {
      std::ifstream in(file);
      if (!in) {
        std::cerr << "lumalint: cannot read " << file << "\n";
        return 2;
      }
      std::stringstream buf;
      buf << in.rdbuf();
      source = buf.str();
    }
    if (as_function) source = "return (" + source + "\n)";
    const auto diags =
        script::analysis::analyze_source(source, file, catalog, opts);
    any_error = any_error || script::analysis::has_errors(diags);
    if (json) {
      print_json(std::cout, file, diags, first_json);
    } else {
      for (const auto& d : diags) {
        std::cout << file << ":" << script::analysis::format(d) << "\n";
      }
    }
  }
  if (json) std::cout << (first_json ? "" : "\n") << "]\n";
  return any_error ? 1 : 0;
}
