// load_sharing — the paper's SV programming example, end to end.
//
// "The example deals with load sharing among several servers that offer the
// same functional interface ... Sharing the load among servers is the
// responsibility of clients: They dynamically locate the least loaded
// servers, and address their requests to them."
//
// Four stateless servers on four hosts; service agents export offers with
// dynamic LoadAvg / LoadAvgIncreasing properties (Fig. 3 monitor); several
// clients drive load-sharing smart proxies whose adaptation strategy is the
// Fig. 7 Luma code, shipped as text at run time. External load spikes roam
// across the hosts; the table printed each minute shows clients migrating
// and the load staying shared.
#include <iomanip>
#include <iostream>

#include "core/infrastructure.h"
#include "sim/workload.h"

using namespace adapt;

namespace {

constexpr const char* kInterest = R"(function(observer, value, monitor)
  local incr
  incr = monitor:getAspectValue("increasing")
  return value[1] > 50 and incr == "yes"
end)";

// Fig. 7, verbatim apart from comments.
constexpr const char* kStrategyScript = R"(
  smartproxy._strategies = {
    LoadIncrease = function(self)
      self._loadavg = self._loadavgmon:getvalue()
      local query
      query = "LoadAvg < 50 and LoadAvgIncreasing == 'no' "
      if not self:_select(query) then
        self._loadavgmon:attachEventObserver(
          self._observer,
          "LoadIncrease",
          [[function(observer, value, monitor)
            local incr
            incr = monitor:getAspectValue("increasing")
            return value[1] > 70 and incr == "yes"
          end]])
      end
    end
  }
)";

}  // namespace

int main() {
  core::Infrastructure infra({.simulated_time = true, .name = "loadshare"});
  const std::vector<std::string> hosts = {"n1", "n2", "n3", "n4"};

  trading::ServiceTypeDef type;
  type.name = "Compute";
  type.properties = {{"LoadAvg", "number", trading::PropertyDef::Mode::Normal},
                     {"Host", "string", trading::PropertyDef::Mode::Normal}};
  infra.trader().types().add(type);

  // Servers record real CPU work on their host per request.
  for (const auto& name : hosts) {
    auto host = infra.make_host(name);
    auto servant = orb::FunctionServant::make("Compute");
    servant->on("work", [host](const ValueList&) {
      host->record_work(0.25);  // each request costs 250 ms of CPU
      return Value(host->name());
    });
    infra.deploy_server(name, "Compute", servant);
  }

  // Six clients with Fig. 7 strategies, each issuing a request every 2 s.
  std::vector<core::SmartProxyPtr> proxies;
  std::vector<std::unique_ptr<sim::ClosedLoopClient>> clients;
  std::map<std::string, int> landed;
  for (int i = 0; i < 6; ++i) {
    core::SmartProxyConfig cfg;
    cfg.service_type = "Compute";
    cfg.constraint = "LoadAvg < 50 and LoadAvgIncreasing == 'no'";
    cfg.preference = "min LoadAvg";
    auto proxy = infra.make_proxy(cfg);
    proxy->add_interest("LoadIncrease", kInterest);
    proxy->eval_strategy_script(kStrategyScript);
    clients.push_back(std::make_unique<sim::ClosedLoopClient>(
        infra.timers(),
        [proxy, &landed] { landed[proxy->invoke("work").as_string()]++; }, 2.0));
    clients.back()->start();
    proxies.push_back(std::move(proxy));
  }

  // External load roams: a spike on n1 at minute 5, then n2 at minute 20.
  sim::schedule_load_spike(*infra.timers(), infra.host("n1"), 300, 1200, 90);
  sim::schedule_load_spike(*infra.timers(), infra.host("n2"), 1200, 2100, 90);

  std::cout << "t(min)";
  for (const auto& name : hosts) std::cout << std::setw(9) << name;
  std::cout << "   client requests per server this minute\n";

  std::map<std::string, int> last_landed;
  for (int minute = 1; minute <= 40; ++minute) {
    infra.run_for(60.0);
    std::cout << std::setw(5) << minute << ' ';
    for (const auto& name : hosts) {
      std::cout << std::setw(9) << std::fixed << std::setprecision(1)
                << infra.host(name)->loadavg()[0];
    }
    std::cout << "   ";
    for (const auto& name : hosts) {
      const int delta = landed[name] - last_landed[name];
      std::cout << name << ":" << std::setw(3) << delta << "  ";
      last_landed[name] = landed[name];
    }
    std::cout << '\n';
  }

  for (auto& client : clients) client->stop();
  std::cout << "\nper-proxy rebinds:";
  for (const auto& proxy : proxies) std::cout << ' ' << proxy->rebinds();
  std::cout << "\ntotal requests per server:";
  for (const auto& name : hosts) std::cout << "  " << name << "=" << landed[name];
  std::cout << '\n';
  return 0;
}
