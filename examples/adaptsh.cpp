// adaptsh — the scriptable console: the whole infrastructure driven from a
// Luma program (paper SII: "With an interpreted language, it is easy to ...
// do automatic or interactive remote modifications and extensions to
// distributed components and services").
//
// Usage:
//   adaptsh <script.luma>    run a deployment script from a file
//   adaptsh -                read the script from stdin
//   adaptsh trace [script]   run the script (or demo), then dump the recorded
//                            spans as JSON lines (one trace tree per trace id)
//   adaptsh metrics [script] run the script (or demo), then dump the process
//                            metrics registry as JSON
//   adaptsh events [script]  run the script (or an event-channel demo), then
//                            dump the channel statistics as JSON
//   adaptsh lb [script]      run the script (or a replica-balancing demo),
//                            then dump the process metrics (lb.* counters)
//   adaptsh overload         run the overload demo: a strategy script watches
//                            orb.overload().shed_rate and degrades request
//                            quality while the runtime is shedding
//   adaptsh                  run the built-in demo script
//
// Scripts see the `infra` table (hosts, Luma servers, smart proxies, virtual
// time — see core/script_bindings.h), the `trading` table (LuaTrading), the
// monitor constructors (EventMonitor:new / BasicMonitor:new), the `trace` and
// `metrics` observability tables (obs/script_bindings.h), and the full Luma
// standard library including string patterns.
#include <atomic>
#include <chrono>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/script_bindings.h"
#include "monitor/bindings.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "orb/script_bindings.h"
#include "trading/script_bindings.h"

using namespace adapt;

namespace {

constexpr const char* kDemoScript = R"LUMA(
print("adaptsh demo: a whole auto-adaptive deployment in one script")
infra.add_type("Greeter")

-- servers implemented in the interpreted language, one per host
for i, name in ipairs({"earth", "mars"}) do
  local server = {}
  function server:greet(who)
    return "hello " .. who .. ", this is " .. name
  end
  infra.deploy(name, "Greeter", server, 0.1)
end

-- a load-aware smart proxy with a scripted strategy
proxy = infra.make_proxy{
  type = "Greeter",
  constraint = "LoadAvg < 50 and LoadAvgIncreasing == 'no'",
  preference = "min LoadAvg",
}
proxy:add_interest("LoadIncrease", [[function(o, v, m)
  return v[1] > 50 and m:getAspectValue("increasing") == "yes"
end]])
proxy:set_strategy("LoadIncrease",
  [[function(self) self:_select("LoadAvg < 50") end]])

print(proxy:invoke("greet", "operator"))

-- inspect the market through LuaTrading
for i, offer in ipairs(trading.query("Greeter", "", "min LoadAvg")) do
  print(string.format("  offer %s on %s: LoadAvg=%.1f",
        offer.id, offer.properties.Host, offer.properties.LoadAvg))
end

-- overload whichever host is serving us; watch the proxy walk away
local victim = string.match(proxy:invoke("greet", "x"), "this is (%a+)")
print("overloading " .. victim .. " ...")
infra.host(victim):set_jobs(150)
infra.run_for(600)

print(proxy:invoke("greet", "operator"))
print("rebinds: " .. proxy:rebinds())
assert(proxy:rebinds() >= 2, "expected a migration")
)LUMA";

constexpr const char* kLbDemoScript = R"LUMA(
print("adaptsh lb demo: client-side balancing across a replica group")
infra.add_type("Worker")

-- three interchangeable replicas of one service
for i, name in ipairs({"alpha", "beta", "gamma"}) do
  local server = {}
  function server:getvalue()
    return name
  end
  infra.deploy(name, "Worker", server, 0.1)
end

-- a balancing proxy: instead of binding one component, it spreads
-- invocations over every matching offer (power-of-two-choices on EWMA
-- latency, per-replica circuit breakers, optional hedging)
proxy = infra.make_proxy{ type = "Worker", policy = "p2c" }
local hits = {}
for i = 1, 30 do
  local who = proxy:invoke("getvalue")
  hits[who] = (hits[who] or 0) + 1
end
for i, name in ipairs({"alpha", "beta", "gamma"}) do
  print(string.format("  %s served %d/30", name, hits[name] or 0))
end

-- the replica set is observable and retunable at runtime
local stats = proxy:lb_stats()
print(string.format("policy=%s size=%d healthy=%d",
      stats.policy, stats.size, stats.healthy))
for i = 1, #stats.replicas do
  local r = stats.replicas[i]
  print(string.format("  replica %s: picks=%d breaker=%s",
        r.offer_id, r.picks, r.breaker))
end

proxy:lb_policy("round_robin")
print("switched to " .. proxy:lb_policy())
for i = 1, 6 do proxy:invoke("getvalue") end
assert(proxy:lb_stats().policy == "round_robin")
)LUMA";

constexpr const char* kEventsDemoScript = R"LUMA(
print("adaptsh events demo: decoupled pub/sub for monitor events")
infra.event_channel()

-- publishers and subscribers never see each other: the channel decouples
-- them in space and time.
events.publish("deploy.start", { region = "eu" })
events.publish("load.high", 87)
events.publish("load.high", 92)

print("last load.high: " .. tostring(events.last("load.high")))
local s = events.stats()
print(string.format("published=%d subscribers=%d", s.published, s.subscribers))

-- a monitor publishing through the channel: the predicate runs once per
-- update no matter how many subscribers the channel fans out to
local mon = EventMonitor:new("Temp", function() return 80 end)
mon:setEventChannel(infra.event_channel())
mon:defineChannelEvent("Overheat", [[function(o, v, m) return v > 70 end]])
mon:update()
print("channel publishes from monitor: " .. events.stats().published)
)LUMA";

// The overload demo drives real threads against a real admission-controlled
// ORB, so it needs one demo-local native (demand.run) that is not part of
// the lumalint catalog — hence the non-LUMA raw-string delimiter, which
// keeps this block out of check.sh's embedded-corpus lint.
constexpr const char* kOverloadDemoScript = R"DEMO(
print("adaptsh overload demo: admission control closed by a strategy script")

-- phase 1: three greedy clients demand full-quality (~3 ms) renders from a
-- renderer with one dispatch slot. The queue stands above CoDel's target,
-- so the runtime sheds instead of building unbounded delay.
orb.stats_reset()
local before = demand.run(0.4, "high")
print(string.format("  full quality: %d served, %d shed (shed rate %.2f)",
      before.ok, before.shed, before.shed_rate))

-- phase 2: the strategy reads the ORB's own overload signal and downgrades
-- the requested quality (~0.3 ms) while the runtime is shedding — the
-- paper's adaptation loop, closed over the admission valve.
local quality = "high"
local o = orb.overload()
if o.shed_rate > 0.05 then
  print(string.format("  overload detected (shed rate %.2f): degrading quality",
        o.shed_rate))
  quality = "low"
end
orb.stats_reset()
local after = demand.run(0.4, quality)
print(string.format("  adapted: %d served, %d shed (shed rate %.2f)",
      after.ok, after.shed, after.shed_rate))
assert(after.shed_rate <= before.shed_rate * 0.5,
       "adaptation must cut the shed rate")
print("adaptation cut the shed rate by " ..
      string.format("%.0f%%", (1 - after.shed_rate / before.shed_rate) * 100))
)DEMO";

/// `adaptsh overload`: a 1-slot admission-controlled renderer, a closed-loop
/// demand driver, and the strategy script above observing the shed rate.
int run_overload_demo() {
  orb::OrbConfig cfg;
  cfg.name = "overload-demo";
  cfg.max_in_flight_dispatches = 1;
  cfg.admission_queue_limit = 4;
  cfg.codel_target = 0.001;
  cfg.codel_interval = 0.02;
  auto server = orb::Orb::create(cfg);
  auto servant = orb::FunctionServant::make("Render");
  servant->on("render", [](const ValueList& args) {
    const bool low = !args.empty() && args[0].str() == "low";
    std::this_thread::sleep_for(std::chrono::duration<double>(low ? 0.0003 : 0.003));
    return Value(true);
  });
  const ObjectRef ref = server->register_servant(servant, "render");

  script::ScriptEngine engine;
  orb::install_orb_bindings(engine, server);
  auto demand = Table::make();
  demand->set(Value("run"), Value(NativeFunction::make("demand.run",
      [server, ref](const ValueList& a) -> ValueList {
        const double seconds = a.at(0).as_number();
        const std::string quality = a.at(1).as_string();
        const auto until = std::chrono::steady_clock::now() +
                           std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                               std::chrono::duration<double>(seconds));
        std::atomic<uint64_t> ok{0}, shed{0};
        std::vector<std::thread> clients;
        for (int t = 0; t < 3; ++t) {
          clients.emplace_back([&] {
            while (std::chrono::steady_clock::now() < until) {
              try {
                server->invoke(ref, "render", {Value(quality)});
                ++ok;
              } catch (const orb::RejectedError&) {
                ++shed;
              }
            }
          });
        }
        for (auto& t : clients) t.join();
        const double total = static_cast<double>(ok.load() + shed.load());
        auto result = Table::make();
        result->set(Value("ok"), Value(static_cast<double>(ok.load())));
        result->set(Value("shed"), Value(static_cast<double>(shed.load())));
        result->set(Value("shed_rate"),
                    Value(total > 0 ? static_cast<double>(shed.load()) / total : 0.0));
        return {Value(std::move(result))};
      })));
  engine.set_global("demand", Value(std::move(demand)));
  engine.natives().declare("demand.run", 2, 2);

  try {
    engine.eval(kOverloadDemoScript, "overload-demo");
  } catch (const Error& e) {
    std::cerr << "adaptsh: " << e.what() << '\n';
    return 1;
  }
  return 0;
}

/// Dumps every retained span in recording order (children finish before
/// their parents) as JSON lines on stdout.
void dump_traces() {
  const auto spans = obs::default_tracer().recent();
  for (const auto& span : spans) {
    std::cout << obs::span_to_json(span) << '\n';
  }
  std::cerr << "adaptsh: " << spans.size() << " span(s) recorded\n";
}

}  // namespace

int main(int argc, char** argv) {
  // `adaptsh trace [script]` / `adaptsh metrics [script]`: run as usual, then
  // dump the observability state the run produced.
  std::string dump_mode;
  int script_arg = 1;
  if (argc > 1) {
    const std::string mode = argv[1];
    if (mode == "overload") return run_overload_demo();
    if (mode == "trace" || mode == "metrics" || mode == "events" || mode == "lb") {
      dump_mode = mode;
      script_arg = 2;
    }
  }

  core::Infrastructure infra({.simulated_time = true, .name = "adaptsh"});
  script::ScriptEngine engine(infra.clock());
  core::install_infrastructure_bindings(engine, infra);
  // The bindings hold the shell's client ORB weakly; keep it alive here.
  const orb::OrbPtr shell_orb = infra.make_orb("shell-client");
  trading::install_trading_bindings(engine, shell_orb,
                                    trading::trader_refs(infra.trader()));
  monitor::install_monitor_bindings(engine, shell_orb, infra.timers());

  try {
    std::string source = kDemoScript;
    if (dump_mode == "events") source = kEventsDemoScript;
    if (dump_mode == "lb") source = kLbDemoScript;
    std::string chunk_name = "demo";
    if (argc > script_arg) {
      chunk_name = argv[script_arg];
      if (std::string(argv[script_arg]) == "-") {
        std::ostringstream buffer;
        buffer << std::cin.rdbuf();
        source = buffer.str();
        chunk_name = "stdin";
      } else {
        std::ifstream in(argv[script_arg]);
        if (!in.is_open()) {
          std::cerr << "adaptsh: cannot open " << argv[script_arg] << '\n';
          return 1;
        }
        std::ostringstream buffer;
        buffer << in.rdbuf();
        source = buffer.str();
      }
    }
    engine.eval(source, chunk_name);
  } catch (const Error& e) {
    std::cerr << "adaptsh: " << e.what() << '\n';
    return 1;
  }

  if (dump_mode == "trace") {
    dump_traces();
  } else if (dump_mode == "metrics" || dump_mode == "lb") {
    std::cout << obs::metrics().to_json() << '\n';
  } else if (dump_mode == "events") {
    if (infra.has_event_channel()) {
      std::cout << infra.event_channel()->stats().to_json() << '\n';
    } else {
      std::cout << "{}\n";
      std::cerr << "adaptsh: no event channel was created "
                   "(call infra.event_channel() in the script)\n";
    }
  }
  return 0;
}
