// context_aware — the paper's SVI ongoing work (X2): using the adaptation
// infrastructure for context-aware applications in the spirit of the Gaia
// project: "adaptation strategies that consider not only quality of service
// properties, but also other properties of the application's execution
// environment, such as user location, user activity, and time of day."
//
// An "active space" offers display services in several rooms. Each display's
// offer carries dynamic properties served by monitors: Room (static),
// Brightness (time-of-day dependent) and Occupied. A user walks around; a
// context monitor publishes their location. The follow-me display proxy
// re-selects whenever a UserMoved event fires, preferring a free display in
// the user's room — all with the same trader/monitor/smart-proxy machinery
// as the load-sharing example.
#include <iostream>

#include "core/infrastructure.h"
#include "monitor/bindings.h"

using namespace adapt;

int main() {
  core::Infrastructure infra({.simulated_time = true, .name = "gaia"});

  trading::ServiceTypeDef type;
  type.name = "DisplayService";
  type.properties = {{"Room", "string", trading::PropertyDef::Mode::Mandatory},
                     {"Occupied", "boolean", trading::PropertyDef::Mode::Normal}};
  infra.trader().types().add(type);

  // Deploy one display per room; occupancy is a dynamic property.
  std::map<std::string, std::shared_ptr<monitor::EventMonitor>> occupancy;
  for (const std::string room : {"office", "lab", "lounge"}) {
    infra.make_host(room);
    auto agent = infra.make_agent(room);
    auto servant = orb::FunctionServant::make("DisplayService");
    servant->on("show", [room](const ValueList& args) {
      return Value("[" + room + " display] " + args.at(0).as_string());
    });
    const ObjectRef provider = infra.host_orb(room)->register_servant(servant);

    auto occ = agent->create_monitor("Occupied",
        Value(NativeFunction::make("occ", [](const ValueList&) {
          return ValueList{Value(false)};
        })), 30.0);
    occupancy[room] = occ;
    trading::PropertyMap props;
    props["Room"] = trading::OfferedProperty(Value(room));
    props["Occupied"] = trading::OfferedProperty(
        trading::DynamicProperty{agent->monitor_ref(*occ), Value()});
    agent->export_offer("DisplayService", provider, props);
  }

  // The user's location is itself a monitored property on a context host.
  infra.make_host("context");
  auto context_agent = infra.make_agent("context");
  auto location = context_agent->create_monitor("UserLocation",
      Value(NativeFunction::make("loc", [](const ValueList&) {
        return ValueList{Value("office")};
      })), 10.0);

  // Follow-me proxy: rebinds to a display in the user's current room.
  core::SmartProxyConfig cfg;
  cfg.service_type = "DisplayService";
  cfg.constraint = "Room == 'office' and Occupied == FALSE";
  cfg.preference = "first";
  cfg.monitor_property = "";  // the display offers carry no load monitor
  auto proxy = infra.make_proxy(cfg);

  // The proxy observes the *location* monitor — adaptation driven by a
  // context property rather than a QoS property.
  proxy->engine()->set_global("user_room", Value("office"));
  const ObjectRef loc_ref = context_agent->monitor_ref(*location);
  infra.host_orb("context")->invoke(loc_ref, "attachEventObserver",
      {Value(proxy->observer_ref()), Value("UserMoved"),
       Value(R"(function(observer, value, monitor)
         if value ~= last_seen_room then
           last_seen_room = value
           return true
         end
         return false
       end)")});
  proxy->set_strategy("UserMoved", [&](core::SmartProxy& p) {
    const std::string room = monitor::MonitorClient(infra.host_orb("context"), loc_ref)
                                 .getvalue()
                                 .as_string();
    p.select("Room == '" + room + "' and Occupied == FALSE");
  });

  auto show = [&](const std::string& text) {
    std::cout << "t=" << infra.now() << "s  "
              << proxy->invoke("show", {Value(text)}).as_string() << '\n';
  };

  infra.run_for(30.0);
  show("meeting notes");  // office display

  // The user walks to the lab.
  location->set_update_function(Value(NativeFunction::make("loc", [](const ValueList&) {
    return ValueList{Value("lab")};
  })));
  infra.run_for(30.0);
  show("meeting notes");  // follows to the lab display

  // Lab display becomes occupied; user walks to the lounge; office display
  // meanwhile occupied too — the proxy lands on the lounge display.
  occupancy["lab"]->set_update_function(Value(NativeFunction::make("occ",
      [](const ValueList&) { return ValueList{Value(true)}; })));
  location->set_update_function(Value(NativeFunction::make("loc", [](const ValueList&) {
    return ValueList{Value("lounge")};
  })));
  infra.run_for(60.0);
  show("meeting notes");  // lounge display

  std::cout << "\nbindings (follow-me trail):\n";
  for (const auto& ref : proxy->binding_history()) std::cout << "  " << ref << '\n';
  return 0;
}
