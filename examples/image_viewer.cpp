// image_viewer — the QuO example application of the paper's SV: "the client
// requests images from the server and displays them on the screen. ...
// Because the reconfiguration facilities are transparent to the
// applications' functional behavior, we could use the same adaptation code
// we used in the HelloWorld application."
//
// Two image servers generate deterministic synthetic frames (the stand-in
// for the QuO distribution's Bette Davis photographs — see DESIGN.md).
// Producing a frame costs CPU proportional to its resolution, so a hammered
// server's load average climbs. The client pulls frames through a smart
// proxy with the *identical* LoadIncrease strategy used by quickstart /
// load_sharing — demonstrating adaptation code reuse across applications —
// plus one extra, application-specific trick: when every server is busy, it
// downgrades the requested resolution instead of stalling.
#include <iomanip>
#include <iostream>

#include "core/infrastructure.h"
#include "sim/image_store.h"
#include "sim/workload.h"

using namespace adapt;

int main() {
  core::Infrastructure infra({.simulated_time = true, .name = "imageapp"});

  trading::ServiceTypeDef type;
  type.name = "ImageService";
  type.properties = {{"LoadAvg", "number", trading::PropertyDef::Mode::Normal},
                     {"Host", "string", trading::PropertyDef::Mode::Normal}};
  infra.trader().types().add(type);

  for (const std::string name : {"gallery-1", "gallery-2"}) {
    auto host = infra.make_host(name);
    auto servant = orb::FunctionServant::make("ImageService");
    servant->on("getImage", [host](const ValueList& args) {
      const auto index = static_cast<uint32_t>(args.at(0).as_int());
      const auto width = static_cast<uint32_t>(args.at(1).as_int());
      const auto height = static_cast<uint32_t>(args.at(2).as_int());
      host->record_work(sim::image_work_seconds(width, height));
      return Value(sim::make_image(index, width, height));
    });
    infra.deploy_server(name, "ImageService", servant);
  }

  // Same adaptation code as the HelloWorld app (paper's reuse claim) ...
  core::SmartProxyConfig cfg;
  cfg.service_type = "ImageService";
  cfg.constraint = "LoadAvg < 50 and LoadAvgIncreasing == 'no'";
  cfg.preference = "min LoadAvg";
  auto proxy = infra.make_proxy(cfg);
  proxy->add_interest("LoadIncrease", R"(function(observer, value, monitor)
    return value[1] > 50 and monitor:getAspectValue("increasing") == "yes"
  end)");
  proxy->set_strategy("LoadIncrease", [](core::SmartProxy& p) { p.select(); });
  // ... plus an app-specific QoS knob: degrade resolution under pressure.
  proxy->set_strategy_code("AllBusy", "function(self) degrade = true end");

  uint32_t width = 1280;
  uint32_t height = 960;
  uint64_t frames = 0;
  uint64_t bytes = 0;
  std::string current_source;

  auto viewer = sim::ClosedLoopClient(
      infra.timers(),
      [&] {
        const Value img = proxy->invoke(
            "getImage", {Value(static_cast<double>(frames)), Value(static_cast<double>(width)),
                         Value(static_cast<double>(height))});
        const auto info = sim::parse_image(img.as_string());
        ++frames;
        bytes += info.payload_bytes;
        current_source = proxy->current().str();
        // Degrade/restore logic driven by the strategy flag.
        if (proxy->engine()->get_global("degrade").truthy()) {
          width = 640;
          height = 480;
          proxy->engine()->set_global("degrade", Value());
        }
      },
      5.0);
  viewer.start();

  std::cout << "t(min)  gallery-1  gallery-2  frames  resolution  source\n";
  for (int minute = 1; minute <= 20; ++minute) {
    if (minute == 5) infra.host("gallery-1")->set_background_jobs(100);
    if (minute == 12) {
      // Overload both galleries: no server satisfies the constraint any
      // more; fallback keeps frames flowing and AllBusy degrades quality.
      infra.host("gallery-2")->set_background_jobs(100);
      proxy->enqueue_event("AllBusy");
    }
    infra.run_for(60.0);
    std::cout << std::setw(5) << minute << "  " << std::setw(9) << std::fixed
              << std::setprecision(1) << infra.host("gallery-1")->loadavg()[0]
              << std::setw(11) << infra.host("gallery-2")->loadavg()[0] << std::setw(8)
              << frames << "  " << width << 'x' << height << "    " << current_source
              << '\n';
  }
  viewer.stop();
  std::cout << "\ndelivered " << frames << " frames, " << bytes / 1024
            << " KiB total; proxy rebinds: " << proxy->rebinds() << '\n';
  return 0;
}
