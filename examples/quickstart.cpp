// quickstart — the paper's HelloWorld application (SV) in ~100 lines.
//
// Three "hosts" each run a hello server. A service agent on every host
// creates a LoadAvg event monitor and exports an offer whose load properties
// are *dynamic* — the trader asks the monitor for live values at lookup
// time. The client talks through a SmartProxy that selects the least-loaded
// server, observes the bound server's monitor, and migrates when a
// LoadIncrease event fires.
//
// Runs on virtual time, so "45 simulated minutes" finish in milliseconds.
// If /proc/loadavg exists, its current value is also printed for flavor.
#include <iostream>

#include "core/infrastructure.h"
#include "sim/host.h"

using namespace adapt;

int main() {
  core::Infrastructure infra({.simulated_time = true, .name = "quickstart"});

  // 1. Declare the service type in the trader.
  trading::ServiceTypeDef type;
  type.name = "HelloWorld";
  type.properties = {{"LoadAvg", "number", trading::PropertyDef::Mode::Normal},
                     {"Host", "string", trading::PropertyDef::Mode::Normal}};
  infra.trader().types().add(type);

  // 2. Deploy a hello server + agent + monitor on three hosts.
  for (const std::string name : {"ada", "grace", "edsger"}) {
    auto servant = orb::FunctionServant::make("HelloWorld");
    servant->on("hello", [name](const ValueList&) {
      return Value("hello from " + name);
    });
    infra.deploy_server(name, "HelloWorld", servant);
  }

  // 3. A smart proxy with the paper's selection policy and strategy.
  core::SmartProxyConfig cfg;
  cfg.service_type = "HelloWorld";
  cfg.constraint = "LoadAvg < 50 and LoadAvgIncreasing == 'no'";
  cfg.preference = "min LoadAvg";
  auto proxy = infra.make_proxy(cfg);
  proxy->add_interest("LoadIncrease", R"(function(observer, value, monitor)
    return value[1] > 50 and monitor:getAspectValue("increasing") == "yes"
  end)");
  proxy->set_strategy("LoadIncrease", [](core::SmartProxy& p) { p.select(); });

  // 4. Call hello repeatedly while load shifts between hosts.
  auto status = [&](const char* phase) {
    std::cout << phase << "  t=" << infra.now() << "s\n";
    for (const std::string name : {"ada", "grace", "edsger"}) {
      const auto load = infra.host(name)->loadavg();
      std::cout << "    " << name << " loadavg " << load[0] << ' ' << load[1] << ' '
                << load[2] << '\n';
    }
    std::cout << "    -> " << proxy->invoke("hello").as_string() << "\n\n";
  };

  status("[t0] all hosts idle; proxy binds the first match");

  infra.host("ada")->set_background_jobs(120);  // load spike on ada
  infra.run_for(600);
  status("[t1] spike on ada; LoadIncrease fired; proxy migrated");

  infra.host("ada")->set_background_jobs(0);
  infra.host("grace")->set_background_jobs(90);
  infra.run_for(1500);
  status("[t2] spike moved to grace; proxy migrated again");

  std::cout << "bindings over time:\n";
  for (const auto& ref : proxy->binding_history()) std::cout << "    " << ref << '\n';
  std::cout << "rebinds: " << proxy->rebinds()
            << ", invocations: " << proxy->invocations() << '\n';

  if (const auto real = sim::read_proc_loadavg()) {
    std::cout << "\n(real /proc/loadavg right now: " << (*real)[0] << ' ' << (*real)[1]
              << ' ' << (*real)[2] << ")\n";
  }
  return 0;
}
