// scripted_deployment — the paper's SII rapid-prototyping story: a complete
// auto-adaptive deployment described and exercised from a single Luma
// script. The *servers themselves* are implemented in the interpreted
// language (tables of functions served through the DSI adapter), new
// service types are introduced at run time, and the adaptation strategy is
// plain script — "we can load and test new design alternatives for an
// application in a quick and simple way."
#include <iostream>

#include "core/script_bindings.h"

using namespace adapt;

namespace {

constexpr const char* kDeploymentScript = R"LUMA(
-- declare the service type at the trader
infra.add_type("KvStore")

-- a key-value server implemented entirely in Luma; one instance per host
function make_kv_server()
  local store = {}
  local server = {}
  function server:put(key, value) store[key] = value return true end
  function server:get(key) return store[key] end
  function server:size()
    local n = 0
    for k, v in pairs(store) do n = n + 1 end
    return n
  end
  return server
end

hosts = {}
for i, name in ipairs({"kv-east", "kv-west"}) do
  hosts[name] = infra.make_host(name)
  infra.deploy(name, "KvStore", make_kv_server(), 0.05)
end

-- a client proxy with the usual load-aware policy and Fig. 7-style strategy
proxy = infra.make_proxy{
  type = "KvStore",
  constraint = "LoadAvg < 50 and LoadAvgIncreasing == 'no'",
  preference = "min LoadAvg",
}
proxy:add_interest("LoadIncrease", [[function(observer, value, monitor)
  return value[1] > 50 and monitor:getAspectValue("increasing") == "yes"
end]])
proxy:set_strategy("LoadIncrease", [[function(self)
  self:_select("LoadAvg < 50 and LoadAvgIncreasing == 'no'")
end]])

-- drive it: write some data, spike the bound host, keep working
proxy:invoke("put", "greeting", "hello from Luma")
print("t=" .. infra.now() .. "s  server: " .. tostring(proxy:current()))
print("get ->", proxy:invoke("get", "greeting"))

first_server = proxy:current()
hosts["kv-east"]:set_jobs(120)   -- overload the first host
infra.run_for(600)

proxy:invoke("put", "after-spike", "still writing")
print("t=" .. infra.now() .. "s  server: " .. tostring(proxy:current()))
print("rebinds:", proxy:rebinds())
assert(proxy:current() ~= first_server, "proxy should have migrated")

-- note: the stores are independent (stateless-service assumption of the
-- paper's SV example does not hold for KvStore) — the new server has only
-- the keys written after migration:
print("size on new server:", proxy:invoke("size"))
)LUMA";

}  // namespace

int main() {
  core::Infrastructure infra({.simulated_time = true, .name = "scripted"});
  script::ScriptEngine engine(infra.clock());
  core::install_infrastructure_bindings(engine, infra);
  engine.eval(kDeploymentScript, "deployment-script");
  std::cout << "scripted deployment ran to completion.\n";
  return 0;
}
