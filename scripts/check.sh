#!/usr/bin/env bash
# Tier-1 verify, optionally under a sanitizer preset.
#
#   scripts/check.sh            # plain RelWithDebInfo build + ctest
#   scripts/check.sh tsan       # ThreadSanitizer build + ctest
#   scripts/check.sh asan       # Address+UB sanitizer build + ctest
#   scripts/check.sh all        # default, then tsan, then asan
#
# The tsan run is the gate for the ORB's concurrency code (listener thread
# reaping, connection pool, retry path); run it for any transport change.
set -euo pipefail
cd "$(dirname "$0")/.."

run_preset() {
  local preset="$1"
  echo "==> configure (${preset})"
  cmake --preset "${preset}"
  echo "==> build (${preset})"
  cmake --build --preset "${preset}" -j "$(nproc)"
  echo "==> test (${preset})"
  ctest --preset "${preset}" -j "$(nproc)"
}

case "${1:-default}" in
  default|tsan|asan)
    run_preset "${1:-default}"
    ;;
  all)
    run_preset default
    run_preset tsan
    run_preset asan
    ;;
  *)
    echo "usage: $0 [default|tsan|asan|all]" >&2
    exit 2
    ;;
esac
echo "==> OK"
