#!/usr/bin/env bash
# Tier-1 verify, optionally under a sanitizer preset.
#
#   scripts/check.sh            # plain RelWithDebInfo build + ctest + bench JSON
#   scripts/check.sh tsan       # ThreadSanitizer build + ctest
#   scripts/check.sh asan       # Address+UB sanitizer build + ctest
#   scripts/check.sh all        # default, then tsan, then asan
#
# The tsan run is the gate for the ORB's concurrency code (listener thread
# reaping, connection pool, retry path); run it for any transport change.
#
# The default preset additionally runs bench_transport / bench_overhead in
# quick JSON mode and validates BENCH_*.json, so a broken machine-readable
# bench surface (schema drift, crash at exit, malformed output) fails the
# check even though the benches are not ctest targets.
set -euo pipefail
cd "$(dirname "$0")/.."

run_preset() {
  local preset="$1"
  echo "==> configure (${preset})"
  cmake --preset "${preset}"
  echo "==> build (${preset})"
  cmake --build --preset "${preset}" -j "$(nproc)"
  echo "==> test (${preset})"
  ctest --preset "${preset}" -j "$(nproc)"
}

# Runs one bench in quick JSON mode and validates the emitted document:
# well-formed JSON, expected bench name, non-empty case list, every case
# with a positive ops_per_sec. Extra arguments are passed to the bench
# binary (e.g. --reactor to select the serving-model sweep).
run_bench_json() {
  local bench="$1" name="$2" build_dir="build"
  shift 2
  if [[ ! -x "${build_dir}/bench/${bench}" ]]; then
    echo "==> bench ${bench}: missing (benchmark library not available?) — skipped"
    return 0
  fi
  echo "==> bench ${bench} $* --json --quick"
  local out="${build_dir}/BENCH_${name}.json"
  (cd "${build_dir}" && "bench/${bench}" "$@" --json="BENCH_${name}.json" --quick >/dev/null)
  python3 - "${out}" "${name}" <<'EOF'
import json, sys
path, name = sys.argv[1], sys.argv[2]
with open(path) as f:
    doc = json.load(f)
assert doc["bench"] == name, f"bench name {doc['bench']!r} != {name!r}"
assert isinstance(doc["quick"], bool)
cases = doc["cases"]
assert cases, "no cases in bench output"
for case in cases:
    assert case["name"], "unnamed case"
    assert case["iterations"] > 0
    assert case["ops_per_sec"] > 0, f"{case['name']}: ops_per_sec not positive"
    ns = case["ns"]
    for key in ("mean", "min", "max", "p50", "p95", "p99"):
        assert ns[key] >= 0, f"{case['name']}: ns.{key} negative"
    assert ns["min"] <= ns["max"]
print(f"    {path}: {len(cases)} cases OK")
EOF
}

# Serving-model gate: runs the reactor-vs-thread-per-connection sweep (full
# iteration counts — the ratio gate needs stable percentiles, and --quick
# medians wobble on a busy machine) and asserts the two bounds the reactor
# migration promised: 64-client throughput at least 3x the threaded
# baseline, single-client p50 within 10% of it.
run_reactor_gate() {
  local build_dir="build"
  if [[ ! -x "${build_dir}/bench/bench_transport" ]]; then
    echo "==> reactor gate: bench_transport missing — skipped"
    return 0
  fi
  echo "==> bench bench_transport --reactor --json (serving-model gate)"
  (cd "${build_dir}" && bench/bench_transport --reactor --json="BENCH_reactor.json" >/dev/null)
  python3 - "${build_dir}/BENCH_reactor.json" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    doc = json.load(f)
cases = {c["name"]: c for c in doc["cases"]}
for name in ("threaded_c1", "reactor_c1", "threaded_c64", "reactor_c64"):
    assert name in cases, f"missing sweep case {name}"

ops_threaded = cases["threaded_c64"]["ops_per_sec"]
ops_reactor = cases["reactor_c64"]["ops_per_sec"]
ratio = ops_reactor / ops_threaded
assert ratio >= 3.0, (
    f"reactor 64-client throughput only {ratio:.2f}x the threaded baseline "
    f"({ops_reactor:.0f} vs {ops_threaded:.0f} batches/s), need >= 3x")

p50_threaded = cases["threaded_c1"]["ns"]["p50"]
p50_reactor = cases["reactor_c1"]["ns"]["p50"]
regress = p50_reactor / p50_threaded - 1.0
assert regress < 0.10, (
    f"reactor single-client p50 regressed {regress * 100:.1f}% "
    f"({p50_reactor:.0f} vs {p50_threaded:.0f} ns), need < 10%")
print(f"    reactor gate OK: c64 throughput {ratio:.2f}x threaded, "
      f"c1 p50 {regress * 100:+.1f}%")
EOF
}

# Balancing gate: runs bench_lb (full iteration counts — the ratio gates
# compare p99s, which --quick leaves too noisy) and asserts the two bounds
# the lb subsystem promises with one replica degraded: p2c's p99 stays
# within 2x of its all-healthy baseline, and round-robin's p99 — which
# surfaces the degraded replica — is at least 3x worse than p2c's.
run_lb_gate() {
  local build_dir="build"
  if [[ ! -x "${build_dir}/bench/bench_lb" ]]; then
    echo "==> lb gate: bench_lb missing — skipped"
    return 0
  fi
  echo "==> bench bench_lb --json (balancing gate)"
  (cd "${build_dir}" && bench/bench_lb --json="BENCH_lb.json" >/dev/null)
  python3 - "${build_dir}/BENCH_lb.json" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    doc = json.load(f)
cases = {c["name"]: c for c in doc["cases"]}
for name in ("sticky", "round_robin_degraded", "p2c_degraded", "p2c_healthy"):
    assert name in cases, f"missing lb case {name}"

p99_p2c = cases["p2c_degraded"]["ns"]["p99"]
p99_healthy = cases["p2c_healthy"]["ns"]["p99"]
ratio = p99_p2c / p99_healthy
assert ratio <= 2.0, (
    f"p2c p99 with one degraded replica is {ratio:.2f}x the all-healthy "
    f"baseline ({p99_p2c:.0f} vs {p99_healthy:.0f} ns), need <= 2x")

p99_rr = cases["round_robin_degraded"]["ns"]["p99"]
win = p99_rr / p99_p2c
assert win >= 3.0, (
    f"p2c p99 only {win:.2f}x better than round_robin under a degraded "
    f"replica ({p99_p2c:.0f} vs {p99_rr:.0f} ns), need >= 3x")
print(f"    lb gate OK: p2c degraded/healthy p99 {ratio:.2f}x, "
      f"round_robin/p2c p99 {win:.1f}x")
EOF
}

# Overload gate: runs bench_overload (full iteration counts) and asserts the
# three bounds the admission/deadline work promises: goodput at 2x offered
# load stays >= 70% of the at-capacity baseline (the queue absorbs, CoDel
# sheds, goodput must not collapse), shedding a request is >= 50x cheaper
# than executing one (~2 ms of work vs a pre-dispatch rejection), and the
# Luma strategy that watches orb.overload().shed_rate and downgrades request
# quality cuts the shed rate to <= 50% of the no-adaptation baseline.
run_overload_gate() {
  local build_dir="build"
  if [[ ! -x "${build_dir}/bench/bench_overload" ]]; then
    echo "==> overload gate: bench_overload missing — skipped"
    return 0
  fi
  echo "==> bench bench_overload --json (overload gate)"
  (cd "${build_dir}" && bench/bench_overload --json="BENCH_overload.json" >/dev/null)
  python3 - "${build_dir}/BENCH_overload.json" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    doc = json.load(f)
cases = {c["name"]: c for c in doc["cases"]}
for name in ("capacity", "overload_2x", "exec_inproc", "shed_inproc",
             "adapt_before", "adapt_after"):
    assert name in cases, f"missing overload case {name}"

goodput = cases["overload_2x"]["extra"]["goodput_ops"]
capacity = cases["capacity"]["extra"]["goodput_ops"]
ratio = goodput / capacity
assert ratio >= 0.70, (
    f"goodput at 2x offered load is only {ratio * 100:.0f}% of capacity "
    f"({goodput:.0f} vs {capacity:.0f} ops/s), need >= 70%")

exec_ns = cases["exec_inproc"]["ns"]["mean"]
shed_ns = cases["shed_inproc"]["ns"]["mean"]
cheaper = exec_ns / shed_ns
assert cheaper >= 50.0, (
    f"shedding only {cheaper:.0f}x cheaper than executing "
    f"({shed_ns:.0f} vs {exec_ns:.0f} ns), need >= 50x")

before = cases["adapt_before"]["extra"]["shed_rate"]
after = cases["adapt_after"]["extra"]["shed_rate"]
assert before > 0.02, (
    f"adapt_before shed rate {before:.3f} too low to demonstrate overload")
assert after <= 0.5 * before, (
    f"strategy only cut shed rate from {before:.3f} to {after:.3f}, "
    f"need <= 50%")
print(f"    overload gate OK: 2x goodput {ratio * 100:.0f}% of capacity, "
      f"shed {cheaper:.0f}x cheaper than exec, "
      f"strategy shed rate {before:.3f} -> {after:.3f}")
EOF
}

# Extracts every R"LUMA(...)LUMA" block embedded in examples/ and tests/
# sources and runs the Luma static analyzer over it (shell policy, full
# native catalog). Any diagnostic at all fails the check: the in-repo
# corpus is required to lint clean. The extracted corpus is kept under
# build/luma_corpus/ and a SARIF report is emitted to build/lumalint.sarif
# (CI uploads it to code scanning).
run_luma_lint() {
  local build_dir="build"
  if [[ ! -x "${build_dir}/tools/lumalint" ]]; then
    echo "==> lumalint: binary missing — skipped"
    return 0
  fi
  echo "==> lumalint (embedded Luma blocks)"
  python3 - "${build_dir}" <<'EOF'
import json, pathlib, re, subprocess, sys
build = sys.argv[1]
corpus = pathlib.Path(build) / "luma_corpus"
corpus.mkdir(parents=True, exist_ok=True)
pattern = re.compile(r'R"LUMA\((.*?)\)LUMA"', re.S)
blocks = []
dirty = 0
for src in sorted(pathlib.Path("examples").glob("*.cpp")) + sorted(
        pathlib.Path("tests").glob("*.cpp")):
    for i, code in enumerate(pattern.findall(src.read_text())):
        path = corpus / f"{src.stem}_{i}.luma"
        path.write_text(code)
        blocks.append((src, i, str(path)))
        proc = subprocess.run([f"{build}/tools/lumalint", "--policy=shell", str(path)],
                              capture_output=True, text=True)
        report = (proc.stdout + proc.stderr).strip()
        if report:
            dirty += 1
            print(f"    {src} block {i}:")
            print("      " + report.replace(str(path) + ":", "").replace("\n", "\n      "))
# One SARIF document over the whole corpus for CI code-scanning upload.
sarif = pathlib.Path(build) / "lumalint.sarif"
if blocks:
    subprocess.run(
        [f"{build}/tools/lumalint", "--policy=shell", f"--sarif={sarif}"]
        + [b[2] for b in blocks],
        capture_output=True, text=True)
    json.load(open(sarif))  # must be well-formed
print(f"    {len(blocks)} embedded Luma blocks linted, {dirty} with diagnostics "
      f"(SARIF: {sarif})")
sys.exit(1 if dirty else 0)
EOF
}

# Static-analysis cost gate: the verdict cache must keep re-verification off
# the ingestion hot path (cache-hit throughput >= 5x cold analysis), and
# cold analysis of a ~4 KB script must stay under 50 ms p50.
run_luma_analysis_gate() {
  local build_dir="build"
  if [[ ! -f "${build_dir}/BENCH_luma_analysis.json" ]]; then
    echo "==> luma analysis gate: BENCH_luma_analysis.json missing — skipped"
    return 0
  fi
  python3 - "${build_dir}/BENCH_luma_analysis.json" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    doc = json.load(f)
cases = {c["name"]: c for c in doc["cases"]}
for name in ("analyze_cold_aspect", "analyze_cold_4kb", "cache_hit"):
    assert name in cases, f"missing luma_analysis case {name}"

speedup = cases["cache_hit"]["ops_per_sec"] / cases["analyze_cold_aspect"]["ops_per_sec"]
assert speedup >= 5.0, (
    f"verdict cache hit only {speedup:.1f}x faster than cold analysis, need >= 5x")

p50_ms = cases["analyze_cold_4kb"]["ns"]["p50"] / 1e6
assert p50_ms < 50.0, (
    f"cold analysis of ~4KB script took {p50_ms:.1f} ms p50, need < 50 ms")
us_per_kb = cases["analyze_cold_4kb"]["ns"]["mean"] / 1e3 / 4.0
print(f"    luma analysis gate OK: cache hit {speedup:.0f}x cold, "
      f"~{us_per_kb:.0f} us/KB cold")
EOF
}

case "${1:-default}" in
  default)
    run_preset default
    run_luma_lint
    run_bench_json bench_transport transport
    run_bench_json bench_overhead overhead
    run_bench_json bench_events events
    run_bench_json bench_lb lb
    run_bench_json bench_luma_analysis luma_analysis
    run_bench_json bench_overload overload
    run_reactor_gate
    run_lb_gate
    run_luma_analysis_gate
    run_overload_gate
    ;;
  tsan|asan)
    run_preset "$1"
    ;;
  all)
    run_preset default
    run_luma_lint
    run_bench_json bench_transport transport
    run_bench_json bench_overhead overhead
    run_bench_json bench_events events
    run_bench_json bench_lb lb
    run_bench_json bench_luma_analysis luma_analysis
    run_bench_json bench_overload overload
    run_reactor_gate
    run_lb_gate
    run_luma_analysis_gate
    run_overload_gate
    run_preset tsan
    run_preset asan
    ;;
  *)
    echo "usage: $0 [default|tsan|asan|all]" >&2
    exit 2
    ;;
esac
echo "==> OK"
